// Parallel demonstrates the §4.5 master/slave evaluation: the same
// generation batch evaluated through the goroutine pool and through
// the PVM-style message-passing simulation, with the 2004-era
// evaluation cost injected so the scaling matters, exactly as it did
// on the original cluster.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/popgen"
)

func main() {
	seed := flag.Uint64("seed", 1, "seed")
	evalMs := flag.Int("evalms", 6, "simulated per-evaluation cost in ms (paper: 6ms for size 3, 201ms for size 7)")
	msgUs := flag.Int("msgus", 200, "simulated per-message latency in µs for the PVM backend")
	flag.Parse()

	data, err := popgen.Generate(popgen.Paper51(*seed))
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	fmt.Println("=== goroutine-pool backend (idiomatic Go master/slave) ===")
	poolParams := exp.SpeedupParams{
		Slaves:        []int{1, 2, 4, 8},
		BatchSize:     64,
		Batches:       2,
		HaplotypeSize: 4,
		EvalLatency:   time.Duration(*evalMs) * time.Millisecond,
		Seed:          *seed,
	}
	points, err := exp.Speedup(ctx, data, poolParams)
	if err != nil {
		if len(points) == 0 {
			log.Fatal(err)
		}
		fmt.Println("interrupted — reporting the completed points")
	}
	if err := exp.RenderSpeedup(os.Stdout, points, poolParams); err != nil {
		log.Fatal(err)
	}
	if ctx.Err() != nil {
		return
	}

	fmt.Println("\n=== PVM-simulation backend (paper's C/PVM structure) ===")
	pvmParams := poolParams
	pvmParams.MessageLatency = time.Duration(*msgUs) * time.Microsecond
	points, err = exp.Speedup(ctx, data, pvmParams)
	if err != nil {
		if len(points) == 0 {
			log.Fatal(err)
		}
		fmt.Println("interrupted — reporting the completed points")
	}
	if err := exp.RenderSpeedup(os.Stdout, points, pvmParams); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwith evaluation cost dominating, speedup is near-linear — the")
	fmt.Println("reason the paper parallelized the evaluation phase and nothing else.")
}
