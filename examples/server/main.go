// Server example: start the ldserve HTTP service in-process on a
// loopback port, then drive the full workflow through the typed Go
// client — upload the paper's 51-SNP synthetic study, open a session,
// run a GA job while printing the streamed per-generation events, and
// finish with the engine statistics. A second job on the same session
// reuses the warmed fitness cache, which the stats make visible.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"

	"repro"
	"repro/serve"
)

func main() {
	// The service: a registry (lifecycles, shared backends) behind
	// the versioned HTTP handler, on an ephemeral loopback port.
	reg := serve.NewRegistry(serve.RegistryConfig{})
	defer reg.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(reg)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	base := "http://" + ln.Addr().String()
	fmt.Printf("ldserve listening on %s\n\n", base)
	client := serve.NewClient(base, nil)
	ctx := context.Background()

	// 1. Upload a dataset — here the built-in 51-SNP preset; "table"
	// and "ped" uploads carry the file content instead. The id is the
	// dataset fingerprint: identical content registers once.
	ds, err := client.CreateDataset(ctx, serve.DatasetRequest{
		Format: serve.FormatPreset, Preset: 51, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d SNPs, %d individuals (%d affected / %d unaffected / %d unknown)\n",
		ds.ID, ds.NumSNPs, ds.NumIndividuals, ds.Affected, ds.Unaffected, ds.Unknown)
	fmt.Printf("HWE QC (%s group): %d/%d SNPs fail at alpha %.2f, worst %s (p=%.3g)\n\n",
		ds.HWE.Group, ds.HWE.Failing, ds.HWE.Tested, ds.HWE.Alpha, ds.HWE.MinPSNP, ds.HWE.MinP)

	// 2. Open a session: it owns the GA-facing view of one evaluation
	// backend; the backend itself (and its memoizing fitness cache)
	// is shared by every session on this dataset.
	sess, err := client.CreateSession(ctx, serve.SessionRequest{DatasetID: ds.ID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s: backend %s, %d workers, statistic %s\n\n",
		sess.ID, sess.Backend, sess.Workers, sess.Statistic)

	// 3. Run a job and stream its progress. A small configuration
	// keeps the example quick; zero fields take the paper's defaults.
	cfg := repro.GAConfig{
		MinSize: 2, MaxSize: 4, PopulationSize: 60,
		StagnationLimit: 30, ImmigrantStagnation: 10, Seed: 1,
	}
	final := runJob(ctx, client, sess.ID, cfg)

	// 4. Engine statistics — and a second job on the warmed cache.
	printStats(ctx, client, sess.ID, "after the first job")
	cfg.Seed = 2
	runJob(ctx, client, sess.ID, cfg)
	printStats(ctx, client, sess.ID, "after a second job on the same session")

	fmt.Println("\nbest haplotypes of the first job:")
	sizes := make([]int, 0, len(final.Result.BestBySize))
	for s := range final.Result.BestBySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		fmt.Printf("  size %d: %s\n", s, final.Result.BestBySize[s])
	}
}

// runJob submits one GA run and prints the streamed generations.
func runJob(ctx context.Context, client *serve.Client, sessionID string, cfg repro.GAConfig) *serve.JobInfo {
	job, err := client.StartJob(ctx, sessionID, serve.JobRequest{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s (seed %d) started; streaming events:\n", job.ID, cfg.Seed)
	final, err := client.StreamEvents(ctx, job.ID, func(ev serve.Event) error {
		if ev.Type == serve.EventGeneration && ev.Entry.Generation%10 == 0 {
			fmt.Printf("  gen %3d  evals %6d  stagnation %2d  best %v\n",
				ev.Entry.Generation, ev.Entry.Evaluations, ev.Entry.Stagnation, ev.Entry.BestBySize)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if final == nil || final.Result == nil {
		log.Fatalf("job %s produced no result", job.ID)
	}
	fmt.Printf("job %s %s: %d generations, %d evaluations\n\n",
		final.ID, final.State, final.Result.Generations, final.Result.TotalEvaluations)
	return final
}

// printStats fetches and prints the shared engine counters.
func printStats(ctx context.Context, client *serve.Client, sessionID, when string) {
	st, err := client.Stats(ctx, sessionID)
	if err != nil {
		log.Fatal(err)
	}
	if st.Engine == nil {
		fmt.Printf("stats %s: backend tracks no counters\n", when)
		return
	}
	fmt.Printf("stats %s: %d requests, %d computed, %d cache hits (rate %.1f%%), %d coalesced, %d entries\n",
		when, st.Engine.Requests, st.Engine.Computed, st.Engine.CacheHits,
		100*st.HitRate, st.Engine.Coalesced, st.Engine.CacheEntries)
}
