package repro

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Job is a GA run executing in the background, started with
// Session.Start. It streams per-generation progress, snapshots its
// live state on demand, and can be waited on or stopped; Stop and a
// cancelled context both yield the partial result accumulated so far.
// This is the handle a serving layer exposes: one Job per submitted
// study run.
type Job struct {
	session  *Session
	cancel   context.CancelFunc
	progress chan TraceEntry
	done     chan struct{}
	started  time.Time

	mu sync.Mutex // guards the fields below
	// latest holds the most recent trace entry per island, keyed by
	// TraceEntry.Island (a synchronous run uses the single key 0).
	// Report merges them into one snapshot.
	latest map[int]TraceEntry
	traced bool
	result *GAResult
	err    error
}

// progressBuffer is the Job progress channel's capacity. A consumer
// that keeps up sees every generation; when the buffer fills, the
// oldest entries are dropped so the stream conflates toward the newest
// state and the GA never blocks on a slow consumer.
const progressBuffer = 16

// Start launches one GA run in the background and returns its Job
// handle immediately. Configuration errors surface synchronously (the
// run is validated before the goroutine starts); the run itself
// terminates when it converges, hits its generation cap, or ctx is
// cancelled. Run-level options (WithGAConfig, WithTrace) override the
// session defaults for this job only.
//
// Concurrent Start calls are safe: the jobs run simultaneously and
// share the session's backend (and its memoizing cache). A session
// built with WithJobLimit instead rejects Start with an error
// wrapping ErrSessionBusy while that many jobs are still running.
func (s *Session) Start(ctx context.Context, opts ...Option) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.reserveJob(); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	j := &Job{
		session:  s,
		cancel:   cancel,
		progress: make(chan TraceEntry, progressBuffer),
		done:     make(chan struct{}),
		started:  time.Now(),
	}
	ga, err := s.prepare(opts, j.publish)
	if err != nil {
		cancel()
		s.releaseJob()
		return nil, err
	}
	go func() {
		defer cancel()
		res, err := ga.RunContext(runCtx)
		j.mu.Lock()
		j.result = res
		j.err = wrapRunErr(err)
		j.mu.Unlock()
		s.releaseJob()
		// done closes first: a consumer that drains Progress to its
		// close must then observe a finished job (Report not Running,
		// Wait immediate), as the Progress contract promises.
		close(j.done)
		close(j.progress)
	}()
	return j, nil
}

// reserveJob claims one background job slot, enforcing the session's
// WithJobLimit cap atomically so racing Start calls can never
// overshoot it.
func (s *Session) reserveJob() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	if s.jobLimit > 0 && s.activeJobs >= s.jobLimit {
		return fmt.Errorf("%w: %d jobs already running (limit %d)", ErrSessionBusy, s.activeJobs, s.jobLimit)
	}
	s.activeJobs++
	return nil
}

// releaseJob returns a slot claimed by reserveJob.
func (s *Session) releaseJob() {
	s.mu.Lock()
	s.activeJobs--
	s.mu.Unlock()
}

// publish delivers one generation's trace entry to the stream and the
// snapshot. It never blocks the GA: when the progress buffer is full,
// the oldest entry is dropped to make room.
func (j *Job) publish(e TraceEntry) {
	j.mu.Lock()
	if j.latest == nil {
		j.latest = make(map[int]TraceEntry)
	}
	j.latest[e.Island] = e
	j.traced = true
	j.mu.Unlock()
	for {
		select {
		case j.progress <- e:
			return
		default:
		}
		select {
		case <-j.progress: // conflate: drop the oldest buffered entry
		default:
		}
	}
}

// Progress returns the per-generation progress stream. The channel is
// closed when the run finishes (after which Wait returns immediately).
// Entries are conflated, never blocking: a slow consumer misses old
// generations, not new ones. For an island-model run the stream
// interleaves every island's entries — each stamped with
// TraceEntry.Island and carrying only that island's sizes and local
// counters; Report merges them into one snapshot.
func (j *Job) Progress() <-chan TraceEntry { return j.progress }

// Done returns a channel closed when the run has finished and its
// result is available.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the run finishes and returns its outcome. After a
// cancellation (context or Stop) the result is the partial outcome and
// the error wraps ErrCanceled; both are stable across repeated calls.
func (j *Job) Wait() (*GAResult, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Stop cancels the run and waits for it to wind down, returning the
// partial result accumulated up to the last completed generation
// together with an error wrapping ErrCanceled. Stopping a finished job
// just returns its outcome.
func (j *Job) Stop() (*GAResult, error) {
	j.cancel()
	return j.Wait()
}

// JobReport is a live snapshot of a running (or finished) job: the
// latest generation's trace, wall-clock elapsed time, and — when the
// session's backend tracks counters — the evaluation engine's report.
// The json field names are part of the public wire format (the
// serving layer's job status endpoint returns a JobReport verbatim)
// and are stable; Elapsed is encoded in nanoseconds under
// "elapsed_ns".
type JobReport struct {
	// Running is false once the result is available.
	Running bool `json:"running"`
	// Generation is the latest completed generation (zero before the
	// first completes). An island-model run reports the furthest
	// island's local count.
	Generation int `json:"generation"`
	// Evaluations is the run's evaluation count so far; for an
	// island-model run, the sum of the islands' local counts.
	Evaluations int64 `json:"evaluations"`
	// BestBySize maps haplotype size to the best fitness found so
	// far, unioned across islands in an island-model run.
	BestBySize map[int]float64 `json:"best_by_size"`
	// Stagnation is the number of generations since the last
	// improvement; an island-model run reports the minimum across
	// islands (the most active island's view).
	Stagnation int `json:"stagnation"`
	// Elapsed is the wall-clock time since Start.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Engine carries the backend counters, nil when untracked.
	Engine *EngineReport `json:"engine,omitempty"`
	// Islands carries each island's latest trace entry (ordered by
	// island number) for an island-model run; nil for synchronous
	// runs.
	Islands []TraceEntry `json:"islands,omitempty"`
}

// Report snapshots the job's live state. It is safe to call at any
// time from any goroutine — the handle an HTTP status endpoint polls.
func (j *Job) Report() JobReport {
	rep := JobReport{Elapsed: time.Since(j.started)}
	select {
	case <-j.done:
	default:
		rep.Running = true
	}
	j.mu.Lock()
	if j.traced {
		rep.BestBySize = make(map[int]float64)
		first := true
		islands := make([]int, 0, len(j.latest))
		for isl, e := range j.latest {
			islands = append(islands, isl)
			if e.Generation > rep.Generation {
				rep.Generation = e.Generation
			}
			rep.Evaluations += e.Evaluations
			if first || e.Stagnation < rep.Stagnation {
				rep.Stagnation = e.Stagnation
			}
			first = false
			for s, v := range e.BestBySize {
				if cur, ok := rep.BestBySize[s]; !ok || v > cur {
					rep.BestBySize[s] = v
				}
			}
		}
		sort.Ints(islands)
		if islands[0] != 0 { // island-model run: attach per-island entries
			rep.Islands = make([]TraceEntry, 0, len(islands))
			for _, isl := range islands {
				rep.Islands = append(rep.Islands, j.latest[isl])
			}
		}
	}
	j.mu.Unlock()
	if er, ok := j.session.Report(); ok {
		rep.Engine = &er
	}
	return rep
}
