package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/clump"
	"repro/internal/core"
	"repro/internal/fitness"
	"repro/internal/race"
)

// Racing types re-exported from the coordinator, so callers of the
// facade never import internal packages.
type (
	// RaceBoard is a leaderboard snapshot; see Session.Race.
	RaceBoard = race.Board
	// RaceLaneStatus is one leaderboard row.
	RaceLaneStatus = race.LaneStatus
	// RaceResult is a race's final outcome.
	RaceResult = race.Result
)

// Race lane states (RaceLaneStatus.State). RaceLaneCanceledByRace
// marks a lane the racing policy cut as trailing, as opposed to an
// outside cancellation.
const (
	RaceLaneRunning        = race.LaneRunning
	RaceLaneDone           = race.LaneDone
	RaceLaneCanceled       = race.LaneCanceled
	RaceLaneCanceledByRace = race.LaneCanceledByRace
	RaceLaneFailed         = race.LaneFailed
)

// RaceOptimizers lists the optimizer names Session.Race understands,
// in canonical order, for usage text and error messages.
func RaceOptimizers() []string { return []string{"ga", "stpga", "tabu", "exhaustive"} }

// raceOptimizerList renders the optimizer names for error messages.
func raceOptimizerList() string {
	names := RaceOptimizers()
	return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
}

// defaultRaceSubsetSize is the haplotype size the subset optimizers
// search when RaceSpec.SubsetSize is zero.
const defaultRaceSubsetSize = 4

// RaceLaneSpec selects one optimizer×statistic configuration to race.
type RaceLaneSpec struct {
	// Name labels the lane on the leaderboard; empty defaults to
	// "optimizer/statistic". Names must be unique within the race.
	Name string `json:"name,omitempty"`
	// Optimizer is one of RaceOptimizers (empty = "ga").
	Optimizer string `json:"optimizer"`
	// Statistic is a clump statistic name, "T1".."T4" or "AA" (empty
	// = the session's statistic). Lanes with the same statistic share
	// one evaluation engine — and its memo cache — so they subsidize
	// each other.
	Statistic string `json:"statistic"`
}

// RaceSpec configures Session.Race: the lanes to launch and the early
// cancellation policy (zero policy fields race every lane to natural
// completion).
type RaceSpec struct {
	// Lanes are the configurations to race; at least one.
	Lanes []RaceLaneSpec `json:"lanes"`
	// SubsetSize is the haplotype size the subset optimizers (stpga,
	// tabu, exhaustive) search (default 4). GA lanes search the full
	// MinSize..MaxSize range of Config.
	SubsetSize int `json:"subset_size,omitempty"`
	// Config overrides the session's GAConfig for GA lanes; nil uses
	// the session default. Its Seed also seeds the subset optimizers,
	// so a race rerun is deterministic lane by lane.
	Config *GAConfig `json:"config,omitempty"`
	// Budget caps total evaluations across all lanes; reaching it
	// cancels every still-running lane (0 = unlimited).
	Budget int64 `json:"budget,omitempty"`
	// CutAfter in (0, 1] triggers one successive-halving cut at
	// CutAfter×Budget total evaluations: running lanes outside the
	// leaderboard's top KeepTop are canceled. Requires Budget.
	CutAfter float64 `json:"cut_after,omitempty"`
	// Stagnation cancels a running, non-leading lane that has not
	// improved in that many of its own evaluations (0 = off).
	Stagnation int64 `json:"stagnation_evals,omitempty"`
	// Grace exempts each lane's first evaluations from every cut
	// (default 100).
	Grace int64 `json:"grace,omitempty"`
	// KeepTop is how many leaderboard heads survive the CutAfter cut
	// (default 1).
	KeepTop int `json:"keep_top,omitempty"`
}

// RaceJob is a portfolio race executing in the background, started
// with Session.Race. It mirrors Job: a conflated leaderboard stream
// instead of per-generation progress, a Done channel, Wait/Stop with
// partial results on cancellation, and a pollable Report.
type RaceJob struct {
	session *Session
	r       *race.Race
	started time.Time
	done    chan struct{}

	mu     sync.Mutex
	result *RaceResult
	err    error
}

// Race launches the spec's lanes as one background race over this
// session and returns its handle. Lanes share evaluation backends per
// statistic: lanes scoring the session's own statistic use the
// session backend (and its warmed memo cache); other statistics get
// session-owned engines created on first use and closed with the
// session. A race claims one WithJobLimit slot, like Start.
func (s *Session) Race(ctx context.Context, spec RaceSpec) (*RaceJob, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(spec.Lanes) == 0 {
		return nil, fmt.Errorf("%w: race needs at least one lane", ErrBadConfig)
	}
	cfg := s.baseCfg
	if spec.Config != nil {
		cfg = *spec.Config
	}
	subset := spec.SubsetSize
	if subset == 0 {
		subset = defaultRaceSubsetSize
	}
	if subset < 1 || subset > s.numSNPs {
		return nil, fmt.Errorf("%w: race subset size %d out of range (1 to %d SNPs)", ErrBadConfig, subset, s.numSNPs)
	}
	if err := s.reserveJob(); err != nil {
		return nil, err
	}
	specs := make([]race.LaneSpec, 0, len(spec.Lanes))
	for i, ln := range spec.Lanes {
		stat := s.stat
		if ln.Statistic != "" {
			var err error
			if stat, err = clump.Parse(ln.Statistic); err != nil {
				s.releaseJob()
				return nil, fmt.Errorf("%w: lane %d: %w", ErrBadConfig, i, err)
			}
		}
		optimizer := ln.Optimizer
		if optimizer == "" {
			optimizer = "ga"
		}
		run, err := s.laneRunFunc(optimizer, cfg, subset)
		if err != nil {
			s.releaseJob()
			return nil, fmt.Errorf("%w: lane %d: %w", ErrBadConfig, i, err)
		}
		ev, err := s.evaluatorFor(stat)
		if err != nil {
			s.releaseJob()
			return nil, err
		}
		specs = append(specs, race.LaneSpec{
			Name:      ln.Name,
			Optimizer: optimizer,
			Statistic: stat.String(),
			Eval:      ev,
			Run:       run,
		})
	}
	r, err := race.Start(ctx, specs, race.Policy{
		Budget:     spec.Budget,
		CutAfter:   spec.CutAfter,
		Stagnation: spec.Stagnation,
		Grace:      spec.Grace,
		KeepTop:    spec.KeepTop,
	})
	if err != nil {
		s.releaseJob()
		return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	rj := &RaceJob{session: s, r: r, started: time.Now(), done: make(chan struct{})}
	go func() {
		res, err := r.Wait()
		rj.mu.Lock()
		rj.result = &res
		if errors.Is(err, race.ErrStopped) {
			rj.err = fmt.Errorf("%w: %w", ErrCanceled, err)
		} else {
			rj.err = err
		}
		rj.mu.Unlock()
		s.releaseJob()
		close(rj.done)
	}()
	return rj, nil
}

// laneRunFunc builds the optimizer driver for one lane. GA lanes run
// the paper's synchronous adaptive GA with the given config (same
// seed and parameters as a standalone run, so a winning GA lane is
// bit-identical to running alone); subset lanes search one haplotype
// size with the optimizer's own defaults, seeded from the config.
func (s *Session) laneRunFunc(optimizer string, cfg GAConfig, subset int) (race.RunFunc, error) {
	numSNPs := s.numSNPs
	switch optimizer {
	case "ga":
		return func(ctx context.Context, ev fitness.Evaluator) (race.LaneResult, error) {
			ga, err := core.New(ev, numSNPs, cfg)
			if err != nil {
				return race.LaneResult{}, err
			}
			res, err := ga.RunContext(ctx)
			if err != nil {
				return race.LaneResult{}, err
			}
			return bestOfGA(res), nil
		}, nil
	case "stpga":
		return func(ctx context.Context, ev fitness.Evaluator) (race.LaneResult, error) {
			res, err := baseline.GreedyExchange(ev, numSNPs, subset, baseline.GreedyExchangeConfig{Seed: cfg.Seed})
			return race.LaneResult{BestSites: res.BestSites, BestFitness: res.BestFitness}, laneErr(ctx, err)
		}, nil
	case "tabu":
		return func(ctx context.Context, ev fitness.Evaluator) (race.LaneResult, error) {
			res, err := baseline.TabuSearch(ev, numSNPs, subset, baseline.TabuConfig{Seed: cfg.Seed})
			return race.LaneResult{BestSites: res.BestSites, BestFitness: res.BestFitness}, laneErr(ctx, err)
		}, nil
	case "exhaustive":
		return func(ctx context.Context, ev fitness.Evaluator) (race.LaneResult, error) {
			res, err := baseline.ExhaustiveContext(ctx, ev, numSNPs, subset)
			return race.LaneResult{BestSites: res.BestSites, BestFitness: res.BestFitness}, laneErr(ctx, err)
		}, nil
	}
	return nil, fmt.Errorf("unknown optimizer %q (want %s)", optimizer, raceOptimizerList())
}

// laneErr surfaces a cancellation the budgeted baselines swallow: they
// treat the race meter's context errors as skippable failed
// evaluations, drain their budget, and return a partial best with a
// nil error — which would classify a cut lane as done. Returning the
// context error instead lets the coordinator label the lane
// canceled/canceled_by_race and keep the metered partial best.
func laneErr(ctx context.Context, err error) error {
	if err == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// bestOfGA reduces a GA result to the single best haplotype across
// sizes (smallest size wins fitness ties, for determinism).
func bestOfGA(res *core.Result) race.LaneResult {
	out := race.LaneResult{BestFitness: math.Inf(-1)}
	sizes := make([]int, 0, len(res.BestBySize))
	for size := range res.BestBySize {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		if h := res.BestBySize[size]; h != nil && h.Fitness > out.BestFitness {
			out.BestFitness = h.Fitness
			out.BestSites = append([]int(nil), h.Sites...)
		}
	}
	if out.BestSites == nil {
		return race.LaneResult{}
	}
	return out
}

// evaluatorFor returns the session's shared evaluation backend for a
// statistic: the session's own backend for its primary statistic, or
// a lazily created session-owned native engine per other statistic
// (shared by every lane — and every race — that scores it, and closed
// by Session.Close).
func (s *Session) evaluatorFor(stat Statistic) (Evaluator, error) {
	if stat == s.stat {
		return s.eval, nil
	}
	if s.data == nil {
		return nil, fmt.Errorf("%w: session has no dataset; only its own statistic %v can race", ErrBadConfig, s.stat)
	}
	workers := s.Workers()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if ev, ok := s.raceEvals[stat]; ok {
		return ev, nil
	}
	eng, err := NewEngineKernel(s.data, stat, workers, s.packed)
	if err != nil {
		return nil, err
	}
	if s.raceEvals == nil {
		s.raceEvals = make(map[Statistic]ParallelEvaluator)
	}
	s.raceEvals[stat] = eng
	return eng, nil
}

// Board returns the conflated leaderboard stream: a slow reader skips
// intermediate snapshots but always observes the latest, and the
// channel closes after the final (Finished) board.
func (rj *RaceJob) Board() <-chan RaceBoard { return rj.r.Board() }

// Done returns a channel closed when every lane has reached a
// terminal state and the result is available.
func (rj *RaceJob) Done() <-chan struct{} { return rj.done }

// Wait blocks until the race finishes and returns the final result:
// the winner, every lane's status (losers cut by the policy carry
// state "canceled_by_race" and their partial bests), and the shared
// totals. After a cancellation (context or Stop) the result is the
// partial outcome and the error wraps ErrCanceled.
func (rj *RaceJob) Wait() (*RaceResult, error) {
	<-rj.done
	rj.mu.Lock()
	defer rj.mu.Unlock()
	return rj.result, rj.err
}

// Stop cancels every lane and waits for the race to wind down,
// returning the partial outcome with an error wrapping ErrCanceled.
// Stopping a finished race just returns its outcome.
func (rj *RaceJob) Stop() (*RaceResult, error) {
	rj.r.Stop()
	return rj.Wait()
}

// Snapshot returns the current leaderboard without consuming from the
// Board stream — the handle a status endpoint polls.
func (rj *RaceJob) Snapshot() RaceBoard { return rj.r.Snapshot() }

// Report snapshots the race as a JobReport, for surfaces that treat
// races and GA jobs uniformly: Evaluations is the race's recorded
// total across lanes, and Engine aggregates the counters of every
// backend the race evaluates through (the session's plus any
// per-statistic race engines).
func (rj *RaceJob) Report() JobReport {
	b := rj.r.Snapshot()
	rep := JobReport{
		Running:     !b.Finished,
		Evaluations: b.TotalEvaluations,
		Elapsed:     time.Since(rj.started),
	}
	if er, ok := rj.session.raceEngineReport(); ok {
		rep.Engine = &er
	}
	return rep
}

// raceEngineReport sums the counters of the session backend and every
// per-statistic race engine, so a race's cost is visible as one
// report. False when no backend tracks counters.
func (s *Session) raceEngineReport() (EngineReport, bool) {
	var sum EngineReport
	found := false
	add := func(ev Evaluator) {
		r, ok := ev.(fitness.Reporter)
		if !ok {
			return
		}
		rep := r.Report()
		sum.Requests += rep.Requests
		sum.Computed += rep.Computed
		sum.CacheHits += rep.CacheHits
		sum.Coalesced += rep.Coalesced
		sum.CacheEntries += rep.CacheEntries
		sum.Workers += rep.Workers
		sum.PerWorker = append(sum.PerWorker, rep.PerWorker...)
		if rep.Uptime > sum.Uptime {
			sum.Uptime = rep.Uptime
		}
		found = true
	}
	add(s.eval)
	s.mu.Lock()
	evs := make([]Evaluator, 0, len(s.raceEvals))
	for _, ev := range s.raceEvals {
		evs = append(evs, ev)
	}
	s.mu.Unlock()
	for _, ev := range evs {
		add(ev)
	}
	return sum, found
}
