package repro

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fitness"
	"repro/internal/island"
)

// Session is the long-lived handle for studying one dataset: it owns
// the dataset plus its evaluation backend, so the backend's memoizing
// fitness cache persists across runs — a second run (or a parameter
// sweep) pays only for haplotypes no earlier run visited. Construct
// with NewSession, run synchronously with Run, asynchronously with
// Start, and Close when done with the whole study.
//
// A Session is safe for concurrent use: multiple runs and jobs may
// execute at once and share the backend (the native engine evaluates
// independent batches in parallel; the master/slave backends serialize
// them, as the paper's protocol does).
type Session struct {
	data     *Dataset
	numSNPs  int
	stat     Statistic
	backend  Backend
	eval     Evaluator
	owned    ParallelEvaluator // non-nil when the session must close eval
	baseCfg  GAConfig
	gaSet    bool
	trace    func(TraceEntry)
	jobLimit int // max concurrent Start jobs; 0 = unbounded

	// Sharded-backend shape (WithShardSize / WithSpillDir); shardSize
	// is 0 when the session evaluates monolithically.
	shardSize int
	spillDir  string

	// packed records the session backend's counting kernel (see
	// WithPackedKernel); true unless the option disabled it. For a
	// WithEvaluator session it reports true — the supplied evaluator
	// fixed its own kernel.
	packed bool

	// Island-mode defaults (WithIslands / WithMigration at session
	// level); run-level options override them per run.
	islands     int
	migInterval int
	migCount    int
	migSet      bool

	mu         sync.Mutex
	closed     bool
	activeJobs int // background jobs currently running
	// raceEvals are per-statistic engines created lazily by Race for
	// lanes scoring a statistic other than s.stat; session-owned, so
	// Close releases them.
	raceEvals map[Statistic]ParallelEvaluator
}

// NewSession builds a session over the dataset. Session-level options
// select the fitness statistic, the evaluation backend and its worker
// count (or a caller-owned evaluator via WithEvaluator), a default
// GAConfig, and a default trace observer. Configuration errors wrap
// ErrBadConfig; dataset errors wrap ErrBadDataset.
func NewSession(d *Dataset, opts ...Option) (*Session, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil dataset", ErrBadDataset)
	}
	if d.NumSNPs() < 2 {
		return nil, fmt.Errorf("%w: need at least 2 SNPs, have %d", ErrBadDataset, d.NumSNPs())
	}
	var st settings
	if err := st.apply(opts); err != nil {
		return nil, err
	}
	if st.evalSet && (st.backendSet || st.workersSet) {
		return nil, fmt.Errorf("%w: WithEvaluator replaces the session backend; WithBackend and WithWorkers do not combine with it", ErrBadConfig)
	}
	s := &Session{
		data:        d,
		numSNPs:     d.NumSNPs(),
		stat:        DefaultStatistic,
		backend:     BackendNative,
		baseCfg:     st.gaCfg,
		gaSet:       st.gaSet,
		trace:       st.trace,
		jobLimit:    st.jobLimit,
		islands:     st.islands,
		migInterval: st.migInterval,
		migCount:    st.migCount,
		migSet:      st.migSet,
		packed:      true,
	}
	if st.packedSet {
		if st.evalSet {
			return nil, fmt.Errorf("%w: WithEvaluator supplies the backend; WithPackedKernel does not combine with it", ErrBadConfig)
		}
		s.packed = st.packed
	}
	if st.migSet && st.islands < 1 {
		return nil, fmt.Errorf("%w: WithMigration requires WithIslands(n >= 1)", ErrBadConfig)
	}
	if st.statSet {
		s.stat = st.stat
	}
	if st.backendSet {
		s.backend = st.backend
	}
	if st.shardSizeSet || st.spillDirSet {
		if st.evalSet {
			return nil, fmt.Errorf("%w: WithShardSize/WithSpillDir build the session backend; WithEvaluator does not combine with them", ErrBadConfig)
		}
		if st.backendSet && st.backend != BackendNative {
			return nil, fmt.Errorf("%w: only the native backend shards; WithShardSize/WithSpillDir do not combine with WithBackend(%d)", ErrBadConfig, st.backend)
		}
		eng, err := NewShardedEngineKernel(d, s.stat, st.shardSize, st.spillDir, st.workers, s.packed)
		if err != nil {
			return nil, err
		}
		s.eval = eng
		s.owned = eng
		s.shardSize = eng.Plan().ShardSize
		s.spillDir = st.spillDir
		return s, nil
	}
	if st.evalSet {
		s.eval = st.eval
		return s, nil
	}
	pool, err := NewBackendKernel(d, s.stat, s.backend, st.workers, s.packed)
	if err != nil {
		return nil, err
	}
	s.eval = pool
	s.owned = pool
	return s, nil
}

// Dataset returns the session's dataset.
func (s *Session) Dataset() *Dataset { return s.data }

// NumSNPs returns the dataset's marker count.
func (s *Session) NumSNPs() int { return s.numSNPs }

// Statistic returns the fitness statistic every run of this session
// scores with (DefaultStatistic unless WithStatistic chose another).
// For a WithEvaluator session the statistic is whatever the supplied
// evaluator computes; pass WithStatistic alongside WithEvaluator to
// declare it here, otherwise this reports DefaultStatistic.
func (s *Session) Statistic() Statistic { return s.stat }

// Evaluator exposes the session's evaluation backend, for callers that
// want to score individual haplotypes through the same memoizing cache
// the GA uses (an HTTP layer's ad-hoc scoring endpoint, for example).
func (s *Session) Evaluator() Evaluator { return s.eval }

// ActiveJobs returns the number of background jobs (Session.Start)
// currently running on the session.
func (s *Session) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeJobs
}

// JobLimit returns the session's concurrent background job cap (0 =
// unbounded); see WithJobLimit.
func (s *Session) JobLimit() int { return s.jobLimit }

// ShardSize returns the session backend's SNP columns per shard, or 0
// when the session evaluates monolithically (no WithShardSize /
// WithSpillDir).
func (s *Session) ShardSize() int { return s.shardSize }

// SpillDir returns the directory the session's shards spill to, or ""
// when shards stay in memory.
func (s *Session) SpillDir() string { return s.spillDir }

// PackedKernel reports whether the session's backend counts on the
// packed 2-bit kernel (the default) or the byte reference kernel; see
// WithPackedKernel. WithEvaluator sessions report true.
func (s *Session) PackedKernel() bool { return s.packed }

// Workers returns the evaluation backend's worker count, or 0 when the
// backend does not expose one.
func (s *Session) Workers() int {
	if pe, ok := s.eval.(interface{ Slaves() int }); ok {
		return pe.Slaves()
	}
	return 0
}

// Report returns the evaluation backend's cumulative counters (cache
// hit-rate, coalesced evaluations, per-worker throughput). The second
// result is false when the backend does not track counters (the
// master/slave fidelity backends do not; the native engine does).
func (s *Session) Report() (EngineReport, bool) {
	if r, ok := s.eval.(fitness.Reporter); ok {
		return r.Report(), true
	}
	return EngineReport{}, false
}

// Close releases the session's evaluation backend (and with it the
// memoized fitness cache). Runs still in flight will fail their
// remaining evaluations; finish or Stop jobs first. Close is
// idempotent. Backends supplied via WithEvaluator are not closed —
// their owner closes them.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.owned != nil {
		s.owned.Close()
	}
	for _, ev := range s.raceEvals {
		ev.Close()
	}
	return nil
}

// runner is one prepared GA run, whichever engine executes it: the
// synchronous core.GA or an asynchronous island.Model. Both honor the
// same context semantics and produce the same Result shape.
type runner interface {
	RunContext(ctx context.Context) (*core.Result, error)
}

// prepare merges run-level options over the session defaults and
// builds the engine for one run — the synchronous GA, or the island
// model when the merged options select islands. publish, when
// non-nil, is the Job's progress hook and runs after any user trace.
func (s *Session) prepare(opts []Option, publish func(TraceEntry)) (runner, error) {
	var st settings
	if err := st.apply(opts); err != nil {
		return nil, err
	}
	if err := st.sessionOnly(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	cfg := s.baseCfg
	if st.gaSet {
		cfg = st.gaCfg
	}
	trace := s.trace
	if st.traceSet {
		trace = st.trace
	}
	islands := s.islands
	if st.islandsSet {
		islands = st.islands
	}
	migInterval, migCount := s.migInterval, s.migCount
	if st.migSet {
		migInterval, migCount = st.migInterval, st.migCount
	}
	// A run-level WithMigration must pair with islands somewhere; a
	// session-level migration default (validated by NewSession) is
	// simply inert when the run resolves to the synchronous engine
	// (for example via a run-level WithIslands(0) override).
	if st.migSet && islands < 1 {
		return nil, fmt.Errorf("%w: WithMigration requires WithIslands(n >= 1)", ErrBadConfig)
	}
	cfg.OnGeneration = chainTrace(cfg.OnGeneration, trace, publish)
	if islands > 0 {
		m, err := island.New(s.eval, s.numSNPs, cfg, island.Config{
			Islands:           islands,
			MigrationInterval: migInterval,
			MigrationCount:    migCount,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
		}
		return m, nil
	}
	ga, err := core.New(s.eval, s.numSNPs, cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	return ga, nil
}

// chainTrace composes the per-generation observers in delivery order:
// the legacy GAConfig.OnGeneration callback, then the WithTrace
// observer, then the Job's stream.
func chainTrace(fns ...func(TraceEntry)) func(TraceEntry) {
	var live []func(TraceEntry)
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e TraceEntry) {
		for _, fn := range live {
			fn(e)
		}
	}
}

// Run executes one GA run synchronously under ctx, honoring
// cancellation and deadlines end to end: the generation loop and the
// evaluation batch path both observe ctx, so a cancelled run returns
// within one generation (plus in-flight evaluations). On cancellation
// the returned *GAResult is not nil — it carries the partial outcome
// (every subpopulation best found so far) — and the error wraps both
// ErrCanceled and the context error.
//
// Run-level options (WithGAConfig, WithTrace) override the session
// defaults for this run only.
func (s *Session) Run(ctx context.Context, opts ...Option) (*GAResult, error) {
	ga, err := s.prepare(opts, nil)
	if err != nil {
		return nil, err
	}
	res, err := ga.RunContext(ctx)
	return res, wrapRunErr(err)
}
