package repro_test

import (
	"context"
	"path/filepath"
	"testing"

	"repro"
)

// TestShardedSessionParity: a session sharded at an awkward size (and
// one spilling to disk) must produce the bit-identical GAResult to the
// monolithic native backend for a fixed seed, for every statistic.
func TestShardedSessionParity(t *testing.T) {
	d := backendTestDataset(t)
	cfg := backendTestConfig()
	for _, stat := range []repro.Statistic{repro.T1, repro.T4} {
		mono, err := repro.NewSession(d, repro.WithStatistic(stat), repro.WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		want, err := mono.Run(context.Background(), repro.WithGAConfig(cfg))
		mono.Close()
		if err != nil {
			t.Fatal(err)
		}

		sharded, err := repro.NewSession(d,
			repro.WithStatistic(stat), repro.WithWorkers(3), repro.WithShardSize(5))
		if err != nil {
			t.Fatal(err)
		}
		if sharded.ShardSize() != 5 {
			t.Fatalf("ShardSize() = %d, want 5", sharded.ShardSize())
		}
		got, err := sharded.Run(context.Background(), repro.WithGAConfig(cfg))
		sharded.Close()
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "sharded", want, got)

		dir := filepath.Join(t.TempDir(), "spill")
		spilled, err := repro.NewSession(d,
			repro.WithStatistic(stat), repro.WithWorkers(3),
			repro.WithShardSize(5), repro.WithSpillDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		if spilled.SpillDir() != dir {
			t.Fatalf("SpillDir() = %q, want %q", spilled.SpillDir(), dir)
		}
		got, err = spilled.Run(context.Background(), repro.WithGAConfig(cfg))
		spilled.Close()
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "spilled", want, got)
	}
}

func TestShardOptionsValidation(t *testing.T) {
	d := backendTestDataset(t)
	if _, err := repro.NewSession(d, repro.WithShardSize(-1)); err == nil {
		t.Fatal("negative shard size accepted")
	}
	if _, err := repro.NewSession(d, repro.WithSpillDir("")); err == nil {
		t.Fatal("empty spill dir accepted")
	}
	if _, err := repro.NewSession(d, repro.WithShardSize(8), repro.WithBackend(repro.BackendPVM)); err == nil {
		t.Fatal("sharding combined with the PVM backend")
	}
	ev, err := repro.NewEvaluator(d, repro.T1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.NewSession(d, repro.WithShardSize(8), repro.WithEvaluator(ev)); err == nil {
		t.Fatal("sharding combined with WithEvaluator")
	}
	s, err := repro.NewSession(d, repro.WithShardSize(0), repro.WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ShardSize() != repro.DefaultShardSize {
		t.Fatalf("ShardSize() = %d, want DefaultShardSize", s.ShardSize())
	}
	// Shard options are session-level: a run-level use must fail.
	if _, err := s.Run(context.Background(), repro.WithShardSize(8)); err == nil {
		t.Fatal("run-level WithShardSize accepted")
	}
}
