package repro

import (
	"fmt"

	"repro/internal/ehdiall"
	"repro/internal/engine"
	"repro/internal/shard"
)

// DefaultShardSize is the number of SNP columns per shard when
// WithShardSize is not given (or given 0).
const DefaultShardSize = shard.DefaultShardSize

// ShardPlan describes how a dataset's SNP columns are partitioned into
// shards; see ShardedEngine.Plan.
type ShardPlan = shard.Plan

// SweepResult is the outcome document of a sharded, checkpointed
// window sweep (internal/shard.RunSweep): shard and window counts, how
// many shards a restart resumed, and the best-scoring window.
type SweepResult = shard.SweepResult

// ShardedEngine is the native engine running over a sharded view of
// the dataset: fitness evaluation gathers only the SNP columns a
// candidate touches from a shard source (in-memory, or spilled to
// write-once files under a spill directory) with a small LRU of hot
// shards, so a large table never has to be fully resident. Values are
// bit-identical to the monolithic engine; memo-cache keys carry the
// fingerprints of the touched shards. It implements ParallelEvaluator.
type ShardedEngine struct {
	*NativeEngine
	src shard.Source
	ev  *shard.Evaluator
}

// Plan returns the engine's shard partitioning.
func (e *ShardedEngine) Plan() ShardPlan { return e.src.Plan() }

// Close stops the engine's workers and releases the shard source
// (cached shards and any spill handles).
func (e *ShardedEngine) Close() {
	e.NativeEngine.Close()
	e.src.Close()
}

// NewShardedEngine builds a native engine over a sharded view of the
// dataset: shardSize SNP columns per shard (0 = DefaultShardSize),
// spilled on demand to write-once files under spillDir when non-empty
// (the directory is created; a restarted process pointed at the same
// directory reuses the files), served from memory otherwise. workers
// sizes the evaluation pool (0 = one per CPU). Close it when done.
func NewShardedEngine(d *Dataset, stat Statistic, shardSize int, spillDir string, workers int) (*ShardedEngine, error) {
	return NewShardedEngineKernel(d, stat, shardSize, spillDir, workers, true)
}

// NewShardedEngineKernel is NewShardedEngine with an explicit kernel
// choice: packed selects the 2-bit popcount kernel (the default
// elsewhere), false the byte reference implementation. Both produce
// bit-identical values.
func NewShardedEngineKernel(d *Dataset, stat Statistic, shardSize int, spillDir string, workers int, packed bool) (*ShardedEngine, error) {
	var (
		src shard.Source
		err error
	)
	if spillDir != "" {
		src, err = shard.NewSpill(d, spillDir, shardSize, 0)
	} else {
		src, err = shard.NewMem(d, shardSize, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	ev, err := shard.NewEvaluatorKernel(src, d, stat, ehdiall.Config{}, packed)
	if err != nil {
		src.Close()
		return nil, fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	eng, err := engine.New(ev, engine.Options{Workers: workers, Fingerprint: d.Fingerprint()})
	if err != nil {
		src.Close()
		return nil, err
	}
	return &ShardedEngine{NativeEngine: eng, src: src, ev: ev}, nil
}

var _ ParallelEvaluator = (*ShardedEngine)(nil)
