package repro_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro"
)

// Facade-level island-mode coverage: option plumbing, the islands=1
// parity guarantee through Session.Run, and Job progress/report
// merging for multi-island runs.

func islandTestSession(t *testing.T, opts ...repro.Option) *repro.Session {
	t.Helper()
	d, err := repro.Paper51Dataset(17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.NewSession(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func quickIslandCfg(seed uint64) repro.GAConfig {
	return repro.GAConfig{
		PopulationSize:      60,
		PairsPerGeneration:  15,
		StagnationLimit:     10,
		ImmigrantStagnation: 4,
		MaxGenerations:      200,
		Seed:                seed,
	}
}

func TestIslandOptionValidation(t *testing.T) {
	d, err := repro.Paper51Dataset(17)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.NewSession(d, repro.WithIslands(-1)); !errors.Is(err, repro.ErrBadConfig) {
		t.Errorf("WithIslands(-1): want ErrBadConfig, got %v", err)
	}
	if _, err := repro.NewSession(d, repro.WithMigration(5, 1)); !errors.Is(err, repro.ErrBadConfig) {
		t.Errorf("WithMigration without WithIslands: want ErrBadConfig, got %v", err)
	}
	if _, err := repro.NewSession(d, repro.WithIslands(2), repro.WithMigration(-1, 1)); !errors.Is(err, repro.ErrBadConfig) {
		t.Errorf("negative migration interval: want ErrBadConfig, got %v", err)
	}
	s := islandTestSession(t)
	if _, err := s.Run(context.Background(), repro.WithMigration(5, 1)); !errors.Is(err, repro.ErrBadConfig) {
		t.Errorf("run-level WithMigration without islands: want ErrBadConfig, got %v", err)
	}
}

// The facade's islands=1 path must be bit-identical to the
// synchronous engine, per the island determinism contract.
func TestSessionIslandsOneMatchesSync(t *testing.T) {
	s := islandTestSession(t)
	cfg := quickIslandCfg(23)
	want, err := s.Run(context.Background(), repro.WithGAConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(context.Background(), repro.WithGAConfig(cfg), repro.WithIslands(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("islands=1 differs from sync:\nsync:   %+v\nisland: %+v", want, got)
	}
}

// A run-level WithIslands(0) overrides a session-level island default
// back to the synchronous engine.
func TestRunLevelIslandOverride(t *testing.T) {
	s := islandTestSession(t, repro.WithIslands(3), repro.WithMigration(2, 1))
	cfg := quickIslandCfg(31)
	res, err := s.Run(context.Background(), repro.WithGAConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Islands) != 3 {
		t.Fatalf("session island default ignored: got %d island stats", len(res.Islands))
	}
	res, err = s.Run(context.Background(), repro.WithGAConfig(cfg), repro.WithIslands(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Islands != nil {
		t.Errorf("WithIslands(0) run still produced island stats: %+v", res.Islands)
	}
}

// Multi-island jobs stream stamped entries and Report merges them.
func TestJobIslandProgressMerging(t *testing.T) {
	s := islandTestSession(t)
	job, err := s.Start(context.Background(),
		repro.WithGAConfig(quickIslandCfg(41)),
		repro.WithIslands(3), repro.WithMigration(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	islandsSeen := map[int]bool{}
	for e := range job.Progress() {
		islandsSeen[e.Island] = true
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if islandsSeen[0] {
		t.Error("island job leaked an unstamped trace entry")
	}
	if len(islandsSeen) == 0 {
		t.Fatal("no progress entries at all")
	}
	rep := job.Report()
	if rep.Running {
		t.Error("drained job still reports running")
	}
	if rep.Generation == 0 || rep.Evaluations == 0 {
		t.Errorf("merged report has empty counters: %+v", rep)
	}
	if len(rep.Islands) == 0 {
		t.Error("island job report carries no per-island entries")
	}
	for i := 1; i < len(rep.Islands); i++ {
		if rep.Islands[i].Island <= rep.Islands[i-1].Island {
			t.Errorf("per-island report entries not ordered: %+v", rep.Islands)
		}
	}
	// The merged best map must cover every size some island reported.
	for _, e := range rep.Islands {
		for size := range e.BestBySize {
			if _, ok := rep.BestBySize[size]; !ok {
				t.Errorf("merged BestBySize missing size %d", size)
			}
		}
	}
	if len(res.Islands) != 3 {
		t.Errorf("want 3 island stats in result, got %d", len(res.Islands))
	}
}
