package repro_test

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/baseline"
	"repro/internal/testleak"
)

// raceTestConfig keeps GA race lanes short and deterministic.
func raceTestConfig(seed uint64) repro.GAConfig {
	cfg := backendTestConfig()
	cfg.Seed = seed
	return cfg
}

// bestOfResult reduces a GAResult the same way a race lane does: the
// best haplotype across sizes, smallest size winning ties.
func bestOfResult(res *repro.GAResult) (float64, []int) {
	best := math.Inf(-1)
	var sites []int
	sizes := make([]int, 0, len(res.BestBySize))
	for size := range res.BestBySize {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		if h := res.BestBySize[size]; h != nil && h.Fitness > best {
			best = h.Fitness
			sites = h.Sites
		}
	}
	return best, sites
}

func laneByName(t *testing.T, lanes []repro.RaceLaneStatus, name string) repro.RaceLaneStatus {
	t.Helper()
	for _, ln := range lanes {
		if ln.Name == name {
			return ln
		}
	}
	t.Fatalf("lane %q not on leaderboard: %+v", name, lanes)
	return repro.RaceLaneStatus{}
}

// TestRaceWinnerBitIdenticalToSoloRun: a GA lane that completes inside
// a race must report exactly the result the same configuration
// produces running alone on a fresh session — racing shares the
// backend, never the search.
func TestRaceWinnerBitIdenticalToSoloRun(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	cfg := raceTestConfig(7)

	s, err := repro.NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Race(context.Background(), repro.RaceSpec{
		Lanes: []repro.RaceLaneSpec{
			{Optimizer: "ga", Statistic: "T1"},
			{Optimizer: "stpga", Statistic: "T1"},
		},
		SubsetSize: 3,
		Config:     &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	gaLane := laneByName(t, res.Lanes, "ga/T1")
	if gaLane.State != repro.RaceLaneDone {
		t.Fatalf("ga lane state = %q, want done", gaLane.State)
	}

	solo, err := repro.NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	soloRes, err := solo.Run(context.Background(), repro.WithGAConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	wantF, wantSites := bestOfResult(soloRes)
	if gaLane.BestFitness != wantF {
		t.Fatalf("race lane fitness = %v, solo = %v", gaLane.BestFitness, wantF)
	}
	if len(gaLane.BestSites) != len(wantSites) {
		t.Fatalf("race lane sites = %v, solo = %v", gaLane.BestSites, wantSites)
	}
	for i := range wantSites {
		if gaLane.BestSites[i] != wantSites[i] {
			t.Fatalf("race lane sites = %v, solo = %v", gaLane.BestSites, wantSites)
		}
	}

	// The stpga lane must likewise match its standalone run.
	eng, err := repro.NewEngine(d, repro.T1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ge, err := baseline.GreedyExchange(eng, d.NumSNPs(), 3, baseline.GreedyExchangeConfig{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	stLane := laneByName(t, res.Lanes, "stpga/T1")
	if stLane.State != repro.RaceLaneDone {
		t.Fatalf("stpga lane state = %q, want done", stLane.State)
	}
	if stLane.BestFitness != ge.BestFitness {
		t.Fatalf("race stpga fitness = %v, solo = %v", stLane.BestFitness, ge.BestFitness)
	}
}

// TestRaceCheaperThanSequential is the acceptance benchmark's test
// form: racing 4 lanes (2 optimizers x 2 statistics) over one session
// performs strictly fewer backend evaluations than running the same 4
// configurations sequentially on fresh sessions, because lanes on the
// same statistic share one memoizing engine.
func TestRaceCheaperThanSequential(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	cfg := raceTestConfig(11)
	const subset = 3

	s, err := repro.NewSession(d, repro.WithStatistic(repro.T1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Race(context.Background(), repro.RaceSpec{
		Lanes: []repro.RaceLaneSpec{
			{Optimizer: "ga", Statistic: "T1"},
			{Optimizer: "stpga", Statistic: "T1"},
			{Optimizer: "ga", Statistic: "AA"},
			{Optimizer: "stpga", Statistic: "AA"},
		},
		SubsetSize: subset,
		Config:     &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rep := job.Report()
	if rep.Engine == nil {
		t.Fatal("race report carries no engine counters")
	}
	raced := rep.Engine.Computed

	var sequential int64
	for _, stat := range []repro.Statistic{repro.T1, repro.AA} {
		solo, err := repro.NewSession(d, repro.WithStatistic(stat))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := solo.Run(context.Background(), repro.WithGAConfig(cfg)); err != nil {
			solo.Close()
			t.Fatal(err)
		}
		er, ok := solo.Report()
		if !ok {
			solo.Close()
			t.Fatal("no engine report")
		}
		sequential += er.Computed
		solo.Close()

		eng, err := repro.NewEngine(d, stat, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := baseline.GreedyExchange(eng, d.NumSNPs(), subset, baseline.GreedyExchangeConfig{Seed: cfg.Seed}); err != nil {
			eng.Close()
			t.Fatal(err)
		}
		sequential += eng.Report().Computed
		eng.Close()
	}

	if raced >= sequential {
		t.Fatalf("racing computed %d evaluations, sequential %d — sharing bought nothing", raced, sequential)
	}
	if res.TotalSharedHits == 0 {
		t.Fatal("race recorded no cross-lane shared hits")
	}
	t.Logf("raced: %d computed, sequential: %d computed, shared hits: %d",
		raced, sequential, res.TotalSharedHits)
}

// TestRaceStagnationCancelsTrailingLane: under a stagnation policy the
// trailing lane ends canceled_by_race with its partial best preserved,
// while the leader finishes and wins.
func TestRaceStagnationCancelsTrailingLane(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	cfg := raceTestConfig(3)
	cfg.StagnationLimit = 1000
	cfg.MaxGenerations = 2000

	s, err := repro.NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Race(context.Background(), repro.RaceSpec{
		Lanes: []repro.RaceLaneSpec{
			{Optimizer: "exhaustive", Statistic: "T1", Name: "fast"},
			{Optimizer: "ga", Statistic: "T1", Name: "slow"},
		},
		SubsetSize: 2,
		Config:     &cfg,
		Stagnation: 30,
		Grace:      20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, ln := range res.Lanes {
		states[ln.Name] = ln.State
	}
	if states["fast"] != repro.RaceLaneDone && states["slow"] != repro.RaceLaneDone {
		t.Fatalf("no lane finished: %v", states)
	}
	cut := false
	for _, ln := range res.Lanes {
		if ln.State == repro.RaceLaneCanceledByRace {
			cut = true
			if ln.BestSites == nil {
				t.Fatalf("cut lane %q lost its partial best", ln.Name)
			}
		}
	}
	if !cut {
		t.Skipf("no lane was cut under this policy (states %v); cut mechanics are pinned in internal/race", states)
	}
}

// TestRaceCutBaselineLaneNotDone: the budgeted baselines (stpga, tabu)
// swallow the race meter's context errors as skippable failed
// evaluations and return a partial best with a nil error, and
// exhaustive has no budget at all — a lane of any of them cut by the
// race policy must still end canceled_by_race (with the metered
// partial best when it scored anything), never pose as done.
func TestRaceCutBaselineLaneNotDone(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	s, err := repro.NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// C(14,2) = 91 pair subsets and internal baseline budgets of 5000
	// evaluations: a race budget of 30 cuts every lane mid-run.
	job, err := s.Race(context.Background(), repro.RaceSpec{
		Lanes: []repro.RaceLaneSpec{
			{Optimizer: "stpga"},
			{Optimizer: "tabu"},
			{Optimizer: "exhaustive"},
		},
		SubsetSize: 2,
		Budget:     30,
		Grace:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, ln := range res.Lanes {
		if ln.State != repro.RaceLaneCanceledByRace {
			t.Fatalf("cut lane %q state = %q, want canceled_by_race", ln.Name, ln.State)
		}
	}
	if res.Winner.Name == "" {
		t.Fatal("budget-cut race named no winner from partial bests")
	}
}

// TestRaceClaimsJobSlot: a race occupies one WithJobLimit slot for its
// whole lifetime and releases it on completion.
func TestRaceClaimsJobSlot(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithJobLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := raceTestConfig(2)
	cfg.StagnationLimit = 100000
	cfg.MaxGenerations = 100000
	job, err := s.Race(context.Background(), repro.RaceSpec{
		Lanes:  []repro.RaceLaneSpec{{Optimizer: "ga"}},
		Config: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(context.Background()); !errors.Is(err, repro.ErrSessionBusy) {
		t.Fatalf("Start during race: err = %v, want ErrSessionBusy", err)
	}
	if _, err := s.Race(context.Background(), repro.RaceSpec{
		Lanes: []repro.RaceLaneSpec{{Optimizer: "ga"}},
	}); !errors.Is(err, repro.ErrSessionBusy) {
		t.Fatalf("second race: err = %v, want ErrSessionBusy", err)
	}
	res, err := job.Stop()
	if !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("stopped race err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("stopped race returned no partial result")
	}
	if s.ActiveJobs() != 0 {
		t.Fatalf("ActiveJobs = %d after race ended", s.ActiveJobs())
	}
}

// TestRaceBoardStream: the facade re-exposes the conflated leaderboard
// stream; it terminates with a Finished board and closes.
func TestRaceBoardStream(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	s, err := repro.NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Race(context.Background(), repro.RaceSpec{
		Lanes:      []repro.RaceLaneSpec{{Optimizer: "exhaustive"}, {Optimizer: "stpga"}},
		SubsetSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var last repro.RaceBoard
	n := 0
	for b := range job.Board() {
		if b.Seq < last.Seq {
			t.Fatalf("board seq went backwards: %d after %d", b.Seq, last.Seq)
		}
		last = b
		n++
	}
	if n == 0 || !last.Finished {
		t.Fatalf("stream ended after %d boards, final finished = %v", n, last.Finished)
	}
	snap := job.Snapshot()
	if !snap.Finished {
		t.Fatal("post-race snapshot not finished")
	}
	if _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestRaceValidation: configuration errors surface synchronously,
// wrap ErrBadConfig, and never leak a job slot.
func TestRaceValidation(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithJobLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []struct {
		name string
		spec repro.RaceSpec
		want string
	}{
		{"no lanes", repro.RaceSpec{}, "at least one lane"},
		{"bad optimizer", repro.RaceSpec{Lanes: []repro.RaceLaneSpec{{Optimizer: "annealing"}}}, "ga, stpga, tabu or exhaustive"},
		{"bad statistic", repro.RaceSpec{Lanes: []repro.RaceLaneSpec{{Statistic: "T9"}}}, "T1, T2, T3, T4 or AA"},
		{"bad subset", repro.RaceSpec{Lanes: []repro.RaceLaneSpec{{}}, SubsetSize: 99}, "out of range"},
		{"duplicate lanes", repro.RaceSpec{Lanes: []repro.RaceLaneSpec{{Optimizer: "ga"}, {Optimizer: "ga"}}, Budget: 100000}, "duplicate"},
		{"bad policy", repro.RaceSpec{Lanes: []repro.RaceLaneSpec{{}}, CutAfter: 0.5}, "CutAfter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Race(context.Background(), tc.spec)
			if !errors.Is(err, repro.ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want it to mention %q", err, tc.want)
			}
		})
	}
	// Every failure above must have released its slot.
	if s.ActiveJobs() != 0 {
		t.Fatalf("ActiveJobs = %d after failed races", s.ActiveJobs())
	}
}
