package repro_test

import (
	"testing"

	"repro"
)

func backendTestDataset(t *testing.T) *repro.Dataset {
	t.Helper()
	d, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: 14, NumAffected: 30, NumUnaffected: 30,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{3, 9}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func backendTestConfig() repro.GAConfig {
	return repro.GAConfig{
		MinSize: 2, MaxSize: 3, PopulationSize: 24,
		PairsPerGeneration: 8, StagnationLimit: 12,
		ImmigrantStagnation: 5, MaxGenerations: 200, Seed: 5,
	}
}

// TestBackendParity: a fixed seed must produce the identical result
// under the native engine and the PVM simulation — the backends differ
// only in speed, never in trajectory.
func TestBackendParity(t *testing.T) {
	d := backendTestDataset(t)
	cfg := backendTestConfig()
	runWith := func(b repro.Backend) *repro.GAResult {
		res, err := repro.Run(d, cfg, repro.RunOptions{Slaves: 3, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	native := runWith(repro.BackendNative)
	pvm := runWith(repro.BackendPVM)
	pool := runWith(repro.BackendPool)

	for name, other := range map[string]*repro.GAResult{"pvm": pvm, "pool": pool} {
		if native.TotalEvaluations != other.TotalEvaluations {
			t.Errorf("%s: %d evaluations, native %d", name, other.TotalEvaluations, native.TotalEvaluations)
		}
		if native.Generations != other.Generations {
			t.Errorf("%s: %d generations, native %d", name, other.Generations, native.Generations)
		}
		if len(native.BestBySize) != len(other.BestBySize) {
			t.Fatalf("%s: %d sizes, native %d", name, len(other.BestBySize), len(native.BestBySize))
		}
		for size, nb := range native.BestBySize {
			ob := other.BestBySize[size]
			if ob == nil {
				t.Fatalf("%s: no best for size %d", name, size)
			}
			if nb.Fitness != ob.Fitness {
				t.Errorf("%s size %d: fitness %v, native %v", name, size, ob.Fitness, nb.Fitness)
			}
			if len(nb.Sites) != len(ob.Sites) {
				t.Fatalf("%s size %d: sites %v, native %v", name, size, ob.Sites, nb.Sites)
			}
			for i := range nb.Sites {
				if nb.Sites[i] != ob.Sites[i] {
					t.Errorf("%s size %d: sites %v, native %v", name, size, ob.Sites, nb.Sites)
					break
				}
			}
		}
	}
}

// TestEngineCacheHitRateDuringRun: the GA re-visits haplotypes across
// generations, so a run through the native engine must produce cache
// hits and compute strictly less than it serves.
func TestEngineCacheHitRateDuringRun(t *testing.T) {
	d := backendTestDataset(t)
	eng, err := repro.NewEngine(d, repro.T1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := repro.RunWith(eng, d.NumSNPs(), backendTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if rep.CacheHits == 0 || rep.HitRate() <= 0 {
		t.Fatalf("no cache hits on a repeated-genotype run: %+v", rep)
	}
	if rep.Computed >= rep.Requests {
		t.Fatalf("computed %d of %d requests; memoization had no effect", rep.Computed, rep.Requests)
	}
	// The GA coalesces in-batch duplicates itself, so the engine sees
	// at most the GA's requested-score count.
	if rep.Requests == 0 || rep.Requests > res.TotalEvaluations {
		t.Errorf("engine saw %d requests, GA counted %d evaluations", rep.Requests, res.TotalEvaluations)
	}
	var perWorker int64
	for _, n := range rep.PerWorker {
		perWorker += n
	}
	if perWorker != rep.Computed {
		t.Errorf("per-worker counts sum to %d, computed %d", perWorker, rep.Computed)
	}
	if rep.Throughput() <= 0 || rep.WorkerThroughput() <= 0 {
		t.Errorf("throughput not positive: %+v", rep)
	}
}
