package repro_test

import (
	"context"
	"testing"

	"repro"
)

func backendTestDataset(t *testing.T) *repro.Dataset {
	t.Helper()
	d, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: 14, NumAffected: 30, NumUnaffected: 30,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{3, 9}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func backendTestConfig() repro.GAConfig {
	return repro.GAConfig{
		MinSize: 2, MaxSize: 3, PopulationSize: 24,
		PairsPerGeneration: 8, StagnationLimit: 12,
		ImmigrantStagnation: 5, MaxGenerations: 200, Seed: 5,
	}
}

// assertSameResult fails unless the two results are bit-identical in
// trajectory and winners.
func assertSameResult(t *testing.T, name string, want, got *repro.GAResult) {
	t.Helper()
	if want.TotalEvaluations != got.TotalEvaluations {
		t.Errorf("%s: %d evaluations, want %d", name, got.TotalEvaluations, want.TotalEvaluations)
	}
	if want.Generations != got.Generations {
		t.Errorf("%s: %d generations, want %d", name, got.Generations, want.Generations)
	}
	if len(want.BestBySize) != len(got.BestBySize) {
		t.Fatalf("%s: %d sizes, want %d", name, len(got.BestBySize), len(want.BestBySize))
	}
	for size, wb := range want.BestBySize {
		gb := got.BestBySize[size]
		if gb == nil {
			t.Fatalf("%s: no best for size %d", name, size)
		}
		if wb.Fitness != gb.Fitness {
			t.Errorf("%s size %d: fitness %v, want %v", name, size, gb.Fitness, wb.Fitness)
		}
		if len(wb.Sites) != len(gb.Sites) {
			t.Fatalf("%s size %d: sites %v, want %v", name, size, gb.Sites, wb.Sites)
		}
		for i := range wb.Sites {
			if wb.Sites[i] != gb.Sites[i] {
				t.Errorf("%s size %d: sites %v, want %v", name, size, gb.Sites, wb.Sites)
				break
			}
		}
	}
}

// TestBackendParity: a fixed seed must produce the identical result
// under the native engine, the goroutine pool and the PVM simulation —
// the backends differ only in speed, never in trajectory — and under
// each backend the new Session.Run and the deprecated Run shim must be
// bit-identical too.
func TestBackendParity(t *testing.T) {
	d := backendTestDataset(t)
	cfg := backendTestConfig()
	shimWith := func(b repro.Backend) *repro.GAResult {
		res, err := repro.Run(d, cfg, repro.RunOptions{Slaves: 3, Backend: b}) //nolint:staticcheck // deprecated shim under test
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sessionWith := func(b repro.Backend) *repro.GAResult {
		s, err := repro.NewSession(d, repro.WithBackend(b), repro.WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.Run(context.Background(), repro.WithGAConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	native := sessionWith(repro.BackendNative)
	for _, bc := range []struct {
		name    string
		backend repro.Backend
	}{
		{"native", repro.BackendNative},
		{"pool", repro.BackendPool},
		{"pvm", repro.BackendPVM},
	} {
		assertSameResult(t, bc.name+"-session", native, sessionWith(bc.backend))
		assertSameResult(t, bc.name+"-shim", native, shimWith(bc.backend))
	}
}

// TestEngineCacheHitRateDuringRun: the GA re-visits haplotypes across
// generations, so a run through the native engine must produce cache
// hits and compute strictly less than it serves.
func TestEngineCacheHitRateDuringRun(t *testing.T) {
	d := backendTestDataset(t)
	eng, err := repro.NewEngine(d, repro.T1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := repro.RunWith(eng, d.NumSNPs(), backendTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if rep.CacheHits == 0 || rep.HitRate() <= 0 {
		t.Fatalf("no cache hits on a repeated-genotype run: %+v", rep)
	}
	if rep.Computed >= rep.Requests {
		t.Fatalf("computed %d of %d requests; memoization had no effect", rep.Computed, rep.Requests)
	}
	// The GA coalesces in-batch duplicates itself, so the engine sees
	// at most the GA's requested-score count.
	if rep.Requests == 0 || rep.Requests > res.TotalEvaluations {
		t.Errorf("engine saw %d requests, GA counted %d evaluations", rep.Requests, res.TotalEvaluations)
	}
	var perWorker int64
	for _, n := range rep.PerWorker {
		perWorker += n
	}
	if perWorker != rep.Computed {
		t.Errorf("per-worker counts sum to %d, computed %d", perWorker, rep.Computed)
	}
	if rep.Throughput() <= 0 || rep.WorkerThroughput() <= 0 {
		t.Errorf("throughput not positive: %+v", rep)
	}
}
