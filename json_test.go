package repro_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro"
)

// The JSON encodings of the public result/trace/report types are a
// wire contract: the serving layer returns them verbatim, so their
// field names must stay stable and every value must round-trip
// bit-identically.

func roundTrip[T any](t *testing.T, in T) T {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out T
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	return out
}

func TestGAResultJSONRoundTrip(t *testing.T) {
	in := &repro.GAResult{
		BestBySize: map[int]*repro.Haplotype{
			2: {Sites: []int{7, 11}, Fitness: 49.516680698052, Evaluated: true},
			3: {Sites: []int{7, 11, 31}, Fitness: 73.34755133641872, Evaluated: true},
		},
		EvalsAtBest:      map[int]int64{2: 812, 3: 4031},
		TotalEvaluations: 8665,
		Generations:      44,
		Converged:        true,
		MutationRates:    []float64{0.42, 0.23, 0.25},
		CrossoverRates:   []float64{0.61, 0.19},
		Immigrants:       12,
		Islands: []repro.IslandStat{
			{Island: 1, Sizes: []int{2}, Generations: 40, Evaluations: 4100,
				Converged: true, Immigrants: 7, Sent: 8, Received: 6, Dropped: 2,
				MutationRates: []float64{0.4, 0.2, 0.3}, CrossoverRates: []float64{0.5, 0.3}},
			{Island: 2, Sizes: []int{3}, Generations: 44, Evaluations: 4565,
				Converged: true, Immigrants: 5, Sent: 9, Received: 8, Dropped: 0,
				MutationRates: []float64{0.5, 0.2, 0.2}, CrossoverRates: []float64{0.6, 0.2}},
		},
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

func TestTraceEntryJSONRoundTrip(t *testing.T) {
	in := repro.TraceEntry{
		Generation:     17,
		Evaluations:    3996,
		BestBySize:     map[int]float64{2: 49.5, 3: 73.3, 4: 120.46764978612833},
		MutationRates:  []float64{0.42, 0.23, 0.25},
		CrossoverRates: []float64{0.61, 0.19},
		Stagnation:     6,
		Immigrants:     3,
		Island:         2,
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

func TestJobReportJSONRoundTrip(t *testing.T) {
	in := repro.JobReport{
		Running:     true,
		Generation:  9,
		Evaluations: 1771,
		BestBySize:  map[int]float64{2: 40.25},
		Stagnation:  2,
		Elapsed:     1534 * time.Millisecond,
		Engine: &repro.EngineReport{
			Requests:     7924,
			Computed:     3828,
			CacheHits:    4096,
			Coalesced:    5,
			CacheEntries: 3828,
			Workers:      2,
			PerWorker:    []int64{1914, 1914},
			Uptime:       2 * time.Second,
		},
		Islands: []repro.TraceEntry{
			{Generation: 9, Evaluations: 1000, BestBySize: map[int]float64{2: 40.25}, Island: 1},
			{Generation: 7, Evaluations: 771, BestBySize: map[int]float64{3: 61.5}, Island: 2},
		},
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

func TestEngineReportJSONRoundTrip(t *testing.T) {
	in := repro.EngineReport{
		Requests: 10, Computed: 4, CacheHits: 5, Coalesced: 1,
		CacheEntries: 4, Workers: 1, PerWorker: []int64{4},
		Uptime: 1500 * time.Nanosecond,
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

func TestGAConfigJSONRoundTrip(t *testing.T) {
	in := repro.GAConfig{
		MinSize: 2, MaxSize: 6, PopulationSize: 150,
		PairsPerGeneration: 75, StagnationLimit: 100,
		ImmigrantStagnation: 20, MaxGenerations: 100000,
		GlobalMutationRate: 0.9, GlobalCrossoverRate: 0.8,
		MinOperatorRate: 0.05, SNPMutationProbes: 4,
		TournamentSize: 2, Seed: 42,
		DisableAdaptiveRates: true,
	}
	got := roundTrip(t, in)
	// The function-valued fields never cross the wire.
	if got.Constraint != nil || got.OnGeneration != nil {
		t.Error("function fields leaked through JSON")
	}
	in.Constraint, in.OnGeneration = nil, nil
	if !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

// TestWireFieldNamesStable pins the exact JSON key sets: renaming a
// field is a wire-format break and must fail here first.
func TestWireFieldNamesStable(t *testing.T) {
	keysOf := func(v any) map[string]bool {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		keys := make(map[string]bool, len(m))
		for k := range m {
			keys[k] = true
		}
		return keys
	}
	cases := []struct {
		name string
		v    any
		want []string
	}{
		{"GAResult", repro.GAResult{}, []string{
			"best_by_size", "evals_at_best", "total_evaluations", "generations",
			"converged", "mutation_rates", "crossover_rates", "immigrants"}},
		{"TraceEntry", repro.TraceEntry{}, []string{
			"generation", "evaluations", "best_by_size", "mutation_rates",
			"crossover_rates", "stagnation", "immigrants"}},
		{"JobReport", repro.JobReport{}, []string{
			"running", "generation", "evaluations", "best_by_size",
			"stagnation", "elapsed_ns"}},
		{"EngineReport", repro.EngineReport{}, []string{
			"requests", "computed", "cache_hits", "coalesced",
			"cache_entries", "workers", "per_worker", "uptime_ns"}},
		{"Haplotype", repro.Haplotype{}, []string{"sites", "fitness", "evaluated"}},
		// TraceEntry.Island, GAResult.Islands and JobReport.Islands are
		// omitempty: absent from synchronous payloads (checked above),
		// present for island-model runs (pinned here).
		{"IslandStat", repro.IslandStat{}, []string{
			"island", "sizes", "generations", "evaluations", "converged",
			"immigrants", "sent", "received", "dropped",
			"mutation_rates", "crossover_rates"}},
	}
	for _, c := range cases {
		got := keysOf(c.v)
		for _, k := range c.want {
			if !got[k] {
				t.Errorf("%s: missing wire field %q", c.name, k)
			}
			delete(got, k)
		}
		for k := range got {
			t.Errorf("%s: unexpected wire field %q", c.name, k)
		}
	}
}
