package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// ExampleNewSession demonstrates the Session API: one session owns
// the dataset and its evaluation backend, runs are context-aware, and
// the memoizing cache persists across runs.
func ExampleNewSession() {
	data, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: 12, NumAffected: 30, NumUnaffected: 30,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{2, 7}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 4,
	})
	if err != nil {
		panic(err)
	}
	session, err := repro.NewSession(data,
		repro.WithWorkers(4),
		repro.WithGAConfig(repro.GAConfig{
			MinSize: 2, MaxSize: 2, PopulationSize: 20,
			PairsPerGeneration: 6, StagnationLimit: 10, Seed: 2,
		}))
	if err != nil {
		panic(err)
	}
	defer session.Close()

	result, err := session.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("best pair: %v\n", data.SNPNames(result.BestBySize[2].Sites))

	// A second identical run is served from the session's cache.
	if _, err := session.Run(context.Background()); err != nil {
		panic(err)
	}
	report, _ := session.Report()
	fmt.Printf("cache hits observed: %v\n", report.CacheHits > 0)
	fmt.Printf("computed less than requested: %v\n", report.Computed < report.Requests)
	// Output:
	// best pair: [SNP3 SNP8]
	// cache hits observed: true
	// computed less than requested: true
}

// ExampleSession_Start runs the GA in the background and streams its
// per-generation progress through the Job handle.
func ExampleSession_Start() {
	data, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: 12, NumAffected: 30, NumUnaffected: 30,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{2, 7}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 4,
	})
	if err != nil {
		panic(err)
	}
	session, err := repro.NewSession(data)
	if err != nil {
		panic(err)
	}
	defer session.Close()

	job, err := session.Start(context.Background(), repro.WithGAConfig(repro.GAConfig{
		MinSize: 2, MaxSize: 2, PopulationSize: 20,
		PairsPerGeneration: 6, StagnationLimit: 10, Seed: 2,
	}))
	if err != nil {
		panic(err)
	}
	generations := 0
	for range job.Progress() {
		generations++ // one entry per generation (conflated if slow)
	}
	result, err := job.Wait()
	if err != nil {
		panic(err)
	}
	fmt.Printf("streamed progress: %v\n", generations > 0)
	fmt.Printf("best pair: %v\n", data.SNPNames(result.BestBySize[2].Sites))
	// Output:
	// streamed progress: true
	// best pair: [SNP3 SNP8]
}

// ExampleRun demonstrates the deprecated one-call entry point, kept as
// a bit-identical shim over a single-run Session.
func ExampleRun() {
	data, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: 12, NumAffected: 30, NumUnaffected: 30,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{2, 7}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 4,
	})
	if err != nil {
		panic(err)
	}
	result, err := repro.Run(data, repro.GAConfig{
		MinSize: 2, MaxSize: 2, PopulationSize: 20,
		PairsPerGeneration: 6, StagnationLimit: 10, Seed: 2,
	}, repro.RunOptions{Slaves: 2})
	if err != nil {
		panic(err)
	}
	best := result.BestBySize[2]
	fmt.Printf("best pair: %v\n", data.SNPNames(best.Sites))
	fmt.Printf("converged: %v\n", result.Converged)
	// Output:
	// best pair: [SNP3 SNP8]
	// converged: true
}

// ExampleNewEngine runs the GA on the native concurrent evaluation
// engine and inspects the engine's counters afterwards: because the
// GA re-visits the same SNP sets across generations, the memoizing
// cache serves a large share of the requests.
func ExampleNewEngine() {
	data, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: 12, NumAffected: 30, NumUnaffected: 30,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{2, 7}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 4,
	})
	if err != nil {
		panic(err)
	}
	engine, err := repro.NewEngine(data, repro.T1, 4)
	if err != nil {
		panic(err)
	}
	defer engine.Close()
	result, err := repro.RunWith(engine, data.NumSNPs(), repro.GAConfig{
		MinSize: 2, MaxSize: 2, PopulationSize: 20,
		PairsPerGeneration: 6, StagnationLimit: 10, Seed: 2,
	})
	if err != nil {
		panic(err)
	}
	report := engine.Report()
	fmt.Printf("best pair: %v\n", data.SNPNames(result.BestBySize[2].Sites))
	fmt.Printf("cache hits observed: %v\n", report.CacheHits > 0)
	fmt.Printf("computed less than requested: %v\n", report.Computed < report.Requests)
	// Output:
	// best pair: [SNP3 SNP8]
	// cache hits observed: true
	// computed less than requested: true
}

// ExampleNewEvaluator scores a single haplotype through the paper's
// EH-DIALL -> CLUMP pipeline without running the GA.
func ExampleNewEvaluator() {
	data, err := repro.Paper51Dataset(1)
	if err != nil {
		panic(err)
	}
	ev, err := repro.NewEvaluator(data, repro.T1)
	if err != nil {
		panic(err)
	}
	// The planted risk haplotype scores far above an arbitrary one.
	planted, _ := ev.Evaluate([]int{7, 11, 14}) // SNP8 SNP12 SNP15
	arbitrary, _ := ev.Evaluate([]int{0, 1, 2})
	fmt.Printf("planted beats arbitrary: %v\n", planted > arbitrary)
	// Output:
	// planted beats arbitrary: true
}
