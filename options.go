package repro

import "fmt"

// DefaultStatistic is the fitness statistic used when WithStatistic is
// not given: T1, the paper's default. The Statistic zero value never
// selects a statistic (the four constants start at 1), so "unset" and
// "explicitly chosen" are always distinguishable.
const DefaultStatistic = T1

// Option configures a Session or a single run. The backend-shaping
// options — WithStatistic, WithBackend, WithWorkers, WithEvaluator —
// are session-level: they are accepted by NewSession only, because
// the session owns one evaluation backend (and its memoizing cache)
// for its whole lifetime. WithGAConfig and WithTrace are accepted at
// both levels; a run-level value overrides the session default for
// that run only.
type Option func(*settings) error

// settings is the merged option state. Each field carries a set flag
// so defaults stay explicit and level checks are possible.
type settings struct {
	stat         Statistic
	statSet      bool
	backend      Backend
	backendSet   bool
	workers      int
	workersSet   bool
	eval         Evaluator
	evalSet      bool
	jobLimit     int
	jobLimitSet  bool
	gaCfg        GAConfig
	gaSet        bool
	trace        func(TraceEntry)
	traceSet     bool
	islands      int
	islandsSet   bool
	migInterval  int
	migCount     int
	migSet       bool
	shardSize    int
	shardSizeSet bool
	spillDir     string
	spillDirSet  bool
	packed       bool
	packedSet    bool
}

func (s *settings) apply(opts []Option) error {
	for _, o := range opts {
		if o == nil {
			return fmt.Errorf("%w: nil option", ErrBadConfig)
		}
		if err := o(s); err != nil {
			return err
		}
	}
	return nil
}

// sessionOnly reports an error if any session-level option was given
// (used to reject them at run level).
func (s *settings) sessionOnly() error {
	if s.statSet || s.backendSet || s.workersSet || s.evalSet || s.jobLimitSet || s.shardSizeSet || s.spillDirSet || s.packedSet {
		return fmt.Errorf("%w: WithStatistic, WithBackend, WithWorkers, WithEvaluator, WithJobLimit, WithShardSize, WithSpillDir and WithPackedKernel are session-level options; create a new Session to change the evaluation backend", ErrBadConfig)
	}
	return nil
}

// WithStatistic selects the CLUMP statistic used as fitness. Only the
// defined statistics (T1..T4, AA) are valid; in particular the
// Statistic zero value is rejected rather than silently mapped to the
// default, so a run is never configured by accident. Omit the option
// to get DefaultStatistic (T1).
func WithStatistic(stat Statistic) Option {
	return func(s *settings) error {
		if !stat.Valid() {
			return fmt.Errorf("%w: unknown statistic %d (omit WithStatistic for the default, T1)", ErrBadConfig, stat)
		}
		s.stat = stat
		s.statSet = true
		return nil
	}
}

// WithBackend selects the parallel evaluation backend (default
// BackendNative). A fixed GA seed produces the identical result under
// every backend; they differ only in speed.
func WithBackend(b Backend) Option {
	return func(s *settings) error {
		switch b {
		case BackendNative, BackendPool, BackendPVM:
		default:
			return fmt.Errorf("%w: unknown backend %d", ErrBadConfig, b)
		}
		s.backend = b
		s.backendSet = true
		return nil
	}
}

// WithWorkers sizes the evaluation worker pool (0 = one per CPU).
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("%w: negative worker count %d", ErrBadConfig, n)
		}
		s.workers = n
		s.workersSet = true
		return nil
	}
}

// WithEvaluator supplies a caller-owned evaluator instead of having
// the session construct a backend — for example a NativeEngine shared
// across sessions, or a custom decorated pipeline. The session does
// not close it, and WithBackend/WithWorkers do not combine with it;
// WithStatistic may accompany it purely as a declaration of what the
// evaluator computes (surfaced by Session.Statistic).
func WithEvaluator(ev Evaluator) Option {
	return func(s *settings) error {
		if ev == nil {
			return fmt.Errorf("%w: nil evaluator", ErrBadConfig)
		}
		s.eval = ev
		s.evalSet = true
		return nil
	}
}

// WithJobLimit caps the number of background jobs (Session.Start)
// running concurrently on the session; further Start calls fail with
// an error wrapping ErrSessionBusy until a running job finishes. The
// default (0) is no cap: concurrent jobs are safe and share the
// session's backend. Synchronous Session.Run calls are not counted —
// the limit exists for serving layers, which only Start.
func WithJobLimit(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("%w: negative job limit %d", ErrBadConfig, n)
		}
		s.jobLimit = n
		s.jobLimitSet = true
		return nil
	}
}

// WithShardSize routes the session's evaluation through a sharded
// view of the dataset: SNP columns are partitioned into shards of n
// columns (0 = DefaultShardSize) loaded on demand with a small LRU of
// hot shards, so evaluation touches only the columns a candidate
// needs. Results are bit-identical to the monolithic backend. Only the
// native backend shards; WithBackend(BackendPool/BackendPVM) and
// WithEvaluator do not combine with it. See also WithSpillDir.
func WithShardSize(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("%w: negative shard size %d", ErrBadConfig, n)
		}
		s.shardSize = n
		s.shardSizeSet = true
		return nil
	}
}

// WithSpillDir spills the session's shards to write-once files under
// dir (created if needed): shards are materialized to disk on first
// use and re-read on demand, so a large table never has to be fully
// resident in memory. Implies sharding (at DefaultShardSize unless
// WithShardSize chooses another); a restarted process pointed at the
// same directory reuses the spilled files. Combines and conflicts
// exactly as WithShardSize does.
func WithSpillDir(dir string) Option {
	return func(s *settings) error {
		if dir == "" {
			return fmt.Errorf("%w: empty spill directory", ErrBadConfig)
		}
		s.spillDir = dir
		s.spillDirSet = true
		return nil
	}
}

// WithPackedKernel selects the counting kernel behind the session's
// evaluation backend: on (the default) runs the packed 2-bit
// representation — genotype columns packed 32 to a uint64 word and
// tallied with masked popcounts — while off runs the byte-per-genotype
// reference implementation. Both kernels produce bit-identical fitness
// values for every statistic; the option exists for A/B performance
// runs and for exercising the reference path. Session-level only, and
// WithEvaluator does not combine with it (a caller-owned evaluator
// already fixed its kernel at construction).
func WithPackedKernel(on bool) Option {
	return func(s *settings) error {
		s.packed = on
		s.packedSet = true
		return nil
	}
}

// WithGAConfig sets the GA parameters (zero fields take the paper's
// §5.2.1 defaults). At session level it becomes the default for every
// run; at run level it replaces the session default for that run.
func WithGAConfig(cfg GAConfig) Option {
	return func(s *settings) error {
		s.gaCfg = cfg
		s.gaSet = true
		return nil
	}
}

// WithIslands selects the asynchronous island-model engine for the
// run: the per-size subpopulations are partitioned across n islands,
// each evolving in its own goroutine with its own generation loop and
// exchanging elites over bounded non-blocking channels in a ring (see
// WithMigration). The islands share the session's evaluation backend
// — and its memoizing cache — so every worker stays busy with no
// global generation barrier.
//
// n = 0 (the default) keeps the synchronous paper-fidelity engine.
// n = 1 runs the island machinery degenerately and is guaranteed
// bit-identical to the synchronous run for the same GAConfig. Values
// beyond the number of haplotype sizes are clamped to one island per
// size. Accepted at session level (default for every run) and at run
// level (override for that run; WithIslands(0) switches a run back to
// the synchronous engine).
//
// In island mode, TraceEntry streams carry one entry per island per
// local generation, stamped with TraceEntry.Island, and the GAResult
// of a multi-island run carries per-island statistics in
// GAResult.Islands. Multi-island trajectories are deterministic only
// up to migration timing; see the internal/island package
// documentation for the full determinism contract.
func WithIslands(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("%w: negative island count %d", ErrBadConfig, n)
		}
		s.islands = n
		s.islandsSet = true
		return nil
	}
}

// WithMigration tunes the island model's elite exchange: every
// interval of its own generations an island ships the best count
// members of each subpopulation it hosts to the next island in the
// ring. Zero values keep the defaults (interval 10, count 1);
// negative values are rejected. The option only configures runs that
// also select islands — a run that resolves to WithMigration without
// WithIslands(n >= 1) fails with ErrBadConfig. Accepted at session
// and run level, like WithIslands.
func WithMigration(interval, count int) Option {
	return func(s *settings) error {
		if interval < 0 || count < 0 {
			return fmt.Errorf("%w: negative migration parameter (interval %d, count %d)", ErrBadConfig, interval, count)
		}
		s.migInterval = interval
		s.migCount = count
		s.migSet = true
		return nil
	}
}

// WithTrace registers a per-generation observer, called synchronously
// from the GA loop after every generation (in island mode, from each
// island's loop, serialized so entries never interleave mid-call and
// stamped with TraceEntry.Island). For streamed, non-blocking
// consumption prefer Session.Start and the Job's Progress channel; a
// trace function is the right tool for cheap inline bookkeeping (and
// is what the deprecated GAConfig.OnGeneration callback maps to). A
// nil fn clears a session-level trace for one run.
func WithTrace(fn func(TraceEntry)) Option {
	return func(s *settings) error {
		s.trace = fn
		s.traceSet = true
		return nil
	}
}
