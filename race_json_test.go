package repro_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro"
)

// The race types cross the wire verbatim — JobRequest carries a
// RaceSpec in, JobInfo carries boards and results out, and the
// leaderboard SSE frames are RaceBoard snapshots — so their field
// names and value round-trips are pinned exactly like the GA types in
// json_test.go.

func raceLaneStatusFixture(n int) repro.RaceLaneStatus {
	return repro.RaceLaneStatus{
		Name:        "ga/T1",
		Optimizer:   "ga",
		Statistic:   "T1",
		State:       repro.RaceLaneDone,
		BestFitness: 119.39 + float64(n),
		BestSites:   []int{7, int(11 + n)},
		Score:       1,
		Evaluations: int64(390 + n),
		SharedHits:  33,
		Error:       "",
	}
}

func TestRaceSpecJSONRoundTrip(t *testing.T) {
	cfg := repro.GAConfig{MinSize: 2, MaxSize: 3, PopulationSize: 24, Seed: 7}
	in := repro.RaceSpec{
		Lanes: []repro.RaceLaneSpec{
			{Name: "fast", Optimizer: "exhaustive", Statistic: "T1"},
			{Optimizer: "stpga", Statistic: "AA"},
		},
		SubsetSize: 3,
		Config:     &cfg,
		Budget:     6000,
		CutAfter:   0.5,
		Stagnation: 250,
		Grace:      50,
		KeepTop:    2,
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

func TestRaceBoardJSONRoundTrip(t *testing.T) {
	in := repro.RaceBoard{
		Seq:              42,
		Leader:           "ga/T1",
		Lanes:            []repro.RaceLaneStatus{raceLaneStatusFixture(0), raceLaneStatusFixture(1)},
		TotalEvaluations: 8002,
		TotalSharedHits:  5244,
		Finished:         true,
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

func TestRaceResultJSONRoundTrip(t *testing.T) {
	cut := raceLaneStatusFixture(1)
	cut.State = repro.RaceLaneCanceledByRace
	in := repro.RaceResult{
		Winner:           raceLaneStatusFixture(0),
		Lanes:            []repro.RaceLaneStatus{raceLaneStatusFixture(0), cut},
		TotalEvaluations: 8002,
		TotalSharedHits:  5244,
		Elapsed:          174 * time.Millisecond,
	}
	if got := roundTrip(t, in); !reflect.DeepEqual(in, got) {
		t.Errorf("round trip mismatch:\n in: %+v\ngot: %+v", in, got)
	}
}

// TestRaceWireFieldNamesStable pins the exact JSON key sets of the
// race types, the same contract TestWireFieldNamesStable pins for the
// GA types. Populated values are marshaled so omitempty fields are
// pinned too.
func TestRaceWireFieldNamesStable(t *testing.T) {
	keysOf := func(v any) map[string]bool {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		keys := make(map[string]bool, len(m))
		for k := range m {
			keys[k] = true
		}
		return keys
	}
	status := raceLaneStatusFixture(0)
	status.Error = "lane failed"
	cases := []struct {
		name string
		v    any
		want []string
	}{
		{"RaceLaneSpec", repro.RaceLaneSpec{Name: "n", Optimizer: "ga", Statistic: "T1"},
			[]string{"name", "optimizer", "statistic"}},
		{"RaceSpec", repro.RaceSpec{
			Lanes: []repro.RaceLaneSpec{{}}, SubsetSize: 3, Config: &repro.GAConfig{},
			Budget: 1, CutAfter: 0.5, Stagnation: 1, Grace: 1, KeepTop: 1,
		}, []string{
			"lanes", "subset_size", "config", "budget", "cut_after",
			"stagnation_evals", "grace", "keep_top"}},
		{"RaceLaneStatus", status, []string{
			"name", "optimizer", "statistic", "state", "best_fitness",
			"best_sites", "score", "evaluations", "shared_hits", "error"}},
		{"RaceBoard", repro.RaceBoard{
			Seq: 1, Leader: "l", Lanes: []repro.RaceLaneStatus{}, TotalEvaluations: 1,
			TotalSharedHits: 1, Finished: true,
		}, []string{
			"seq", "leader", "lanes", "total_evaluations",
			"total_shared_hits", "finished"}},
		{"RaceResult", repro.RaceResult{}, []string{
			"winner", "lanes", "total_evaluations", "total_shared_hits",
			"elapsed_ns"}},
	}
	for _, c := range cases {
		got := keysOf(c.v)
		for _, k := range c.want {
			if !got[k] {
				t.Errorf("%s: missing wire field %q", c.name, k)
			}
			delete(got, k)
		}
		for k := range got {
			t.Errorf("%s: unexpected wire field %q", c.name, k)
		}
	}
	// The lane states are wire strings, pinned by value.
	for want, got := range map[string]string{
		"running":          repro.RaceLaneRunning,
		"done":             repro.RaceLaneDone,
		"canceled":         repro.RaceLaneCanceled,
		"canceled_by_race": repro.RaceLaneCanceledByRace,
		"failed":           repro.RaceLaneFailed,
	} {
		if want != got {
			t.Errorf("lane state %q changed to %q", want, got)
		}
	}
}
