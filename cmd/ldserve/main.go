// Command ldserve runs the versioned HTTP service over the repro
// Session/Job API: dataset upload, background GA jobs with streamed
// (SSE) progress, and evaluation-engine statistics. Many users share
// one process — and one memoizing fitness cache per dataset+backend.
//
// SIGINT/SIGTERM drain gracefully: every running job is cancelled
// through its context (winding down within one generation), new
// mutating requests get 503, and reads stay up for -drain so clients
// can fetch the partial results of their cancelled jobs before the
// listener closes. A second signal terminates immediately.
//
// Usage:
//
//	ldserve -addr :8080
//	ldserve -addr 127.0.0.1:9000 -max-jobs 2 -session-ttl 10m -drain 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		drain      = flag.Duration("drain", 15*time.Second, "how long reads stay available after SIGINT before the listener closes")
		sessionTTL = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle this long (with no running job)")
		datasetTTL = flag.Duration("dataset-ttl", time.Hour, "evict datasets unreferenced this long (releases their fitness caches)")
		maxJobs    = flag.Int("max-jobs", 4, "max concurrently running jobs per session (excess gets 429)")
		sweep      = flag.Duration("sweep", time.Minute, "idle-eviction janitor period")
	)
	flag.Parse()

	reg := serve.NewRegistry(serve.RegistryConfig{
		SessionTTL:        *sessionTTL,
		DatasetTTL:        *datasetTTL,
		MaxJobsPerSession: *maxJobs,
		SweepInterval:     *sweep,
	})
	hs := &http.Server{Addr: *addr, Handler: serve.NewServer(reg)}

	// First SIGINT/SIGTERM starts the drain; after it the default
	// handling is restored, so a second signal kills the process.
	ctx, stop := cli.SignalContext()
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("ldserve: serving /%s API on %s (max %d jobs/session, session ttl %s, dataset ttl %s)",
		serve.APIVersion, *addr, *maxJobs, *sessionTTL, *datasetTTL)

	select {
	case err := <-errc:
		reg.Close()
		fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// Drain: cancel every running job via its context (partial
	// results stay fetchable), reject new work, keep serving reads.
	// The read window only matters when jobs were actually cancelled;
	// an idle server shuts down immediately.
	hadJobs := reg.RunningJobs() > 0
	reg.BeginDrain()
	if hadJobs {
		log.Printf("ldserve: draining — jobs cancelled, reads stay up for %s (Ctrl-C again to exit now)", *drain)
		deadline := time.Now().Add(*drain)
		for reg.RunningJobs() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if rest := time.Until(deadline); rest > 0 {
			time.Sleep(rest) // clients fetch their partial results here
		}
	} else {
		log.Printf("ldserve: no running jobs — shutting down")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ldserve: shutdown: %v", err)
	}
	reg.Close()
	log.Printf("ldserve: stopped")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldserve: "+format+"\n", args...)
	os.Exit(1)
}
