// Command ldserve runs the versioned HTTP service over the repro
// Session/Job API: dataset upload, background GA jobs with streamed
// (SSE) progress, listings with pagination, and evaluation-engine
// statistics. Many users share one process — and one memoizing
// fitness cache per dataset+backend.
//
// With -data-dir the server is durable: every dataset, session and
// job record is persisted to disk (one fsync'd JSON document each),
// so a restarted server serves its datasets and finished job results
// again and marks jobs that were running at crash time as
// "interrupted". -api-key (repeatable) turns on API-key auth with
// per-key scopes, -rate/-burst a per-key token-bucket rate limit;
// requests are logged through log/slog and GET /metrics exposes
// request/latency/evaluation counters.
//
// SIGINT/SIGTERM drain gracefully: every running job is cancelled
// through its context (winding down within one generation), new
// mutating requests get 503, and reads stay up for -drain so clients
// can fetch the partial results of their cancelled jobs before the
// listener closes (the count of cancelled jobs is logged). The final
// listener close waits at most -shutdown-timeout. A second signal
// terminates immediately.
//
// Usage:
//
//	ldserve -addr :8080
//	ldserve -addr :8080 -data-dir /var/lib/ldserve \
//	        -api-key s3cret -api-key readonly:read -rate 20 -burst 40
//	ldserve -addr 127.0.0.1:9000 -max-jobs 2 -session-ttl 10m \
//	        -drain 30s -shutdown-timeout 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		drain       = flag.Duration("drain", 15*time.Second, "how long reads stay available after SIGINT before the listener closes")
		shutTimeout = flag.Duration("shutdown-timeout", 5*time.Second, "how long the final listener close may take once the drain window ends")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle this long (with no running job)")
		datasetTTL  = flag.Duration("dataset-ttl", time.Hour, "evict datasets unreferenced this long (releases their fitness caches)")
		maxJobs     = flag.Int("max-jobs", 4, "max concurrently running jobs per session (excess gets 429)")
		sweep       = flag.Duration("sweep", 30*time.Second, "idle-eviction janitor period")
		dataDir     = flag.String("data-dir", "", "persist dataset/session/job records here (restored on restart); empty = in-memory only")
		spillDir    = flag.String("spill-dir", "", "spill sharded sessions' shards to write-once files here (one subdirectory per dataset); empty = shards stay in memory")
		rate        = flag.Float64("rate", 0, "per-key (or per-host) rate limit in requests/second; 0 = unlimited")
		burst       = flag.Int("burst", 25, "rate-limit burst size (with -rate); sized so one client's session-setup burst (upload, session, job, stream, first polls) fits without draining the bucket")
		metrics     = flag.Bool("metrics", true, "serve request/latency/evaluation counters on GET /metrics")
		debugRT     = flag.Bool("debug-runtime", false, "serve goroutine/heap/GC counters on GET /debug/runtime (required by tools/loadcheck)")
		packed      = flag.Bool("packed", true, "use the packed 2-bit counting kernel; false runs the byte reference kernel (bit-identical values, for A/B runs)")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
	)
	var keys []serve.APIKey
	flag.Func("api-key", "API key as key[:scope,...] (scopes read, write; none = full access); repeatable", func(v string) error {
		k, err := parseAPIKey(v, len(keys)+1)
		if err != nil {
			return err
		}
		keys = append(keys, k)
		return nil
	})
	flag.Parse()

	reg := serve.NewRegistry(serve.RegistryConfig{
		SessionTTL:        *sessionTTL,
		DatasetTTL:        *datasetTTL,
		MaxJobsPerSession: *maxJobs,
		SweepInterval:     *sweep,
		SpillDir:          *spillDir,
		ByteKernel:        !*packed,
	})

	var opts []serve.ServerOption
	if *dataDir != "" {
		st, err := serve.NewFSStore(*dataDir)
		if err != nil {
			fatalf("open data dir: %v", err)
		}
		opts = append(opts, serve.WithStore(st))
	}
	if len(keys) > 0 {
		opts = append(opts, serve.WithAuth(keys...))
	}
	if *rate > 0 {
		opts = append(opts, serve.WithRateLimit(*rate, *burst))
	}
	if !*quiet {
		opts = append(opts, serve.WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	}
	if *metrics {
		opts = append(opts, serve.WithMetrics())
	}
	if *debugRT {
		opts = append(opts, serve.WithRuntimeStats())
	}
	srv, err := serve.NewServer(reg, opts...)
	if err != nil {
		reg.Close()
		fatalf("%v", err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	// First SIGINT/SIGTERM starts the drain; after it the default
	// handling is restored, so a second signal kills the process.
	ctx, stop := cli.SignalContext()
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	durability := "in-memory records"
	if *dataDir != "" {
		durability = "data dir " + *dataDir
	}
	log.Printf("ldserve: serving /%s API on %s (%s, %d keys, max %d jobs/session, session ttl %s, dataset ttl %s)",
		serve.APIVersion, *addr, durability, len(keys), *maxJobs, *sessionTTL, *datasetTTL)

	select {
	case err := <-errc:
		reg.Close()
		fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// Drain: cancel every running job via its context (partial
	// results stay fetchable — and, with -data-dir, persisted), reject
	// new work, keep serving reads. The read window only matters when
	// jobs were actually cancelled; an idle server shuts down
	// immediately.
	canceled := reg.RunningJobs()
	reg.BeginDrain()
	if canceled > 0 {
		log.Printf("ldserve: draining — %d running jobs cancelled, reads stay up for %s (Ctrl-C again to exit now)", canceled, *drain)
		deadline := time.Now().Add(*drain)
		for reg.RunningJobs() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if rest := time.Until(deadline); rest > 0 {
			time.Sleep(rest) // clients fetch their partial results here
		}
	} else {
		log.Printf("ldserve: no running jobs — shutting down")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *shutTimeout)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ldserve: shutdown: %v", err)
	}
	reg.Close()
	log.Printf("ldserve: stopped")
}

// parseAPIKey parses one -api-key value: key[:scope,...].
func parseAPIKey(v string, n int) (serve.APIKey, error) {
	k := serve.APIKey{Name: fmt.Sprintf("key-%d", n)}
	k.Key, v, _ = strings.Cut(v, ":")
	if k.Key == "" {
		return serve.APIKey{}, errors.New("empty API key")
	}
	if v != "" {
		k.Scopes = strings.Split(v, ",")
	}
	return k, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldserve: "+format+"\n", args...)
	os.Exit(1)
}
