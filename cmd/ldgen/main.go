// Command ldgen generates synthetic case/control SNP datasets in the
// three-table layout the paper describes (§5.1): the genotype table,
// the per-SNP allele frequency table, and the pairwise disequilibrium
// table.
//
// SIGINT/SIGTERM interrupt between output files; tables already
// written stay on disk and the remaining ones are skipped.
//
// Usage:
//
//	ldgen -preset 51 -seed 1 -out data.txt -freq freq.tsv -ld ld.tsv
//	ldgen -snps 80 -affected 60 -unaffected 60 -unknown 0 -out data.txt
//	ldgen -snps 20000 -rows 600 -out big.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/genotype"
	"repro/internal/ld"
	"repro/internal/popgen"
)

func main() {
	var (
		preset     = flag.Int("preset", 0, "paper preset: 51 or 249 SNPs (overrides the shape flags)")
		snps       = flag.Int("snps", 51, "number of SNPs")
		affected   = flag.Int("affected", 53, "affected individuals")
		unaffected = flag.Int("unaffected", 53, "unaffected individuals")
		unknown    = flag.Int("unknown", 70, "unknown-status individuals")
		rows       = flag.Int("rows", 0, "total individuals; splits into the three status groups in the proportions of -affected/-unaffected/-unknown (ignored with -preset)")
		missing    = flag.Float64("missing", 0.01, "missing genotype rate")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("out", "data.txt", "genotype table output path")
		freqOut    = flag.String("freq", "", "allele frequency table output path (optional)")
		ldOut      = flag.String("ld", "", "pairwise disequilibrium table output path (optional)")
		pedOut     = flag.String("ped", "", "LINKAGE pedigree-format output path (optional)")
	)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()
	checkInterrupt := func() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "ldgen: interrupted — remaining outputs skipped")
			os.Exit(130)
		}
	}

	var cfg popgen.Config
	switch *preset {
	case 51:
		cfg = popgen.Paper51(*seed)
	case 249:
		cfg = popgen.Paper249(*seed)
	case 0:
		cfg = popgen.Paper51(*seed)
		cfg.NumSNPs = *snps
		cfg.NumAffected = *affected
		cfg.NumUnaffected = *unaffected
		cfg.NumUnknown = *unknown
		cfg.MissingRate = *missing
		if *rows > 0 {
			total := cfg.NumAffected + cfg.NumUnaffected + cfg.NumUnknown
			aff := cfg.NumAffected * *rows / total
			un := cfg.NumUnaffected * *rows / total
			if aff < 1 || un < 1 {
				fatalf("-rows %d leaves an empty case or control group", *rows)
			}
			cfg.NumAffected = aff
			cfg.NumUnaffected = un
			cfg.NumUnknown = *rows - aff - un
		}
		if *snps != 51 {
			// The paper-preset causal sites only fit the 51-SNP map;
			// re-plant a 3-SNP model spread over the custom map.
			third := *snps / 3
			cfg.Disease.CausalSites = []int{third / 2, third + third/2, 2*third + third/2}
			cfg.Disease.RiskAlleles = []uint8{1, 0, 1}
		}
	default:
		fatalf("unknown preset %d (want 51 or 249)", *preset)
	}

	data, err := popgen.Generate(cfg)
	if err != nil {
		fatalf("generate: %v", err)
	}
	if err := genotype.WriteFile(*out, data); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	a, u, q := data.CountByStatus()
	fmt.Printf("wrote %s: %d SNPs, %d individuals (%d affected, %d unaffected, %d unknown)\n",
		*out, data.NumSNPs(), data.NumIndividuals(), a, u, q)
	fmt.Printf("planted causal SNPs: %v (0-based %v)\n",
		data.SNPNames(cfg.Disease.CausalSites), cfg.Disease.CausalSites)

	if *freqOut != "" {
		checkInterrupt()
		f, err := os.Create(*freqOut)
		if err != nil {
			fatalf("create %s: %v", *freqOut, err)
		}
		if err := genotype.WriteFreqTable(f, data); err != nil {
			fatalf("write freq table: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close %s: %v", *freqOut, err)
		}
		fmt.Printf("wrote %s\n", *freqOut)
	}
	if *pedOut != "" {
		checkInterrupt()
		f, err := os.Create(*pedOut)
		if err != nil {
			fatalf("create %s: %v", *pedOut, err)
		}
		if err := genotype.WritePED(f, data); err != nil {
			fatalf("write ped: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close %s: %v", *pedOut, err)
		}
		fmt.Printf("wrote %s (LINKAGE format, %d markers)\n", *pedOut, data.NumSNPs())
	}
	if *ldOut != "" {
		checkInterrupt()
		matrix := ld.ComputeMatrix(data)
		f, err := os.Create(*ldOut)
		if err != nil {
			fatalf("create %s: %v", *ldOut, err)
		}
		names := make([]string, data.NumSNPs())
		for i := range names {
			names[i] = data.SNPs[i].Name
		}
		if err := matrix.Write(f, names); err != nil {
			fatalf("write LD table: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close %s: %v", *ldOut, err)
		}
		fmt.Printf("wrote %s\n", *ldOut)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldgen: "+format+"\n", args...)
	os.Exit(1)
}
