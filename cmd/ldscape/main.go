// Command ldscape reproduces the paper's §3 landscape study:
// exhaustive enumeration of all haplotypes of small sizes, the
// per-size fitness distributions, and the structural analysis that
// rules out constructive and enumeration methods.
//
// SIGINT/SIGTERM interrupt the enumeration between sizes; the
// completed sizes are reported.
//
// Usage:
//
//	ldscape -preset 51 -min 2 -max 3
//	ldscape -data data.txt -max 4 -top 20
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/genotype"
	"repro/internal/popgen"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset file (from ldgen); empty uses -preset")
		preset   = flag.Int("preset", 51, "synthetic preset when -data is empty: 51 or 249")
		seed     = flag.Uint64("seed", 1, "dataset seed for presets")
		minSize  = flag.Int("min", 2, "smallest enumerated size")
		maxSize  = flag.Int("max", 3, "largest enumerated size (4 = paper's full study, slower)")
		topN     = flag.Int("top", 10, "best haplotypes kept per size")
		workers  = flag.Int("workers", 0, "enumeration workers (0 = one per CPU)")
	)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	var (
		data *genotype.Dataset
		err  error
	)
	if *dataPath != "" {
		data, err = genotype.ReadFile(*dataPath)
	} else {
		switch *preset {
		case 51:
			data, err = popgen.Generate(popgen.Paper51(*seed))
		case 249:
			data, err = popgen.Generate(popgen.Paper249(*seed))
		default:
			err = fmt.Errorf("unknown preset %d", *preset)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldscape: %v\n", err)
		os.Exit(1)
	}

	start := time.Now()
	rep, err := exp.Landscape(ctx, data, exp.LandscapeParams{
		MinSize: *minSize, MaxSize: *maxSize, TopN: *topN, Workers: *workers,
	})
	interrupted := false
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "ldscape: %v\n", err)
			os.Exit(1)
		}
		if rep == nil {
			fmt.Fprintln(os.Stderr, "ldscape: interrupted before the first size completed")
			os.Exit(130)
		}
		interrupted = true
		fmt.Println("interrupted — reporting the completed sizes")
	}
	if err := exp.RenderLandscape(os.Stdout, rep); err != nil {
		fmt.Fprintf(os.Stderr, "ldscape: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ntop haplotypes per size:\n")
	for _, s := range rep.Summaries {
		fmt.Printf("  size %d:\n", s.K)
		for i, e := range s.Top {
			fmt.Printf("    %2d. %-24v fitness %.3f\n", i+1, data.SNPNames(e.Sites), e.Fitness)
		}
	}
	fmt.Printf("elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	if interrupted {
		os.Exit(130)
	}
}
