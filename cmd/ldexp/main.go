// Command ldexp regenerates every table and figure of the paper's
// evaluation section on the synthetic reproduction dataset.
//
// Experiments:
//
//	table1      search-space sizes (paper Table 1)
//	figure4     evaluation time vs haplotype size (paper Figure 4)
//	table2      GA results over repeated runs (paper Table 2)
//	ablation    with/without each advanced mechanism (paper §5.2)
//	speedup     master/slave scaling (paper §4.5 / Figure 6)
//	landscape   exhaustive structure study (paper §3)
//	baselines   dedicated GA vs the methods §3 rules out
//	statcompare objective-function comparison (paper conclusion / future work)
//	robust249   cross-run solution stability at 249 SNPs (paper §5.2)
//	all         everything above
//
// Usage:
//
//	ldexp -exp table2 -runs 10 -seed 1
//	ldexp -exp all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/genotype"
	"repro/internal/popgen"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment id (table1|figure4|table2|ablation|speedup|landscape|baselines|statcompare|robust249|all)")
		seed    = flag.Uint64("seed", 1, "master seed")
		runs    = flag.Int("runs", 10, "GA runs per experiment (paper: 10)")
		slaves  = flag.Int("slaves", 0, "evaluation slaves (0 = one per CPU)")
		quick   = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		samples = flag.Int("samples", 200, "random haplotypes per size for figure4")
	)
	flag.Parse()

	gaCfg := core.Config{} // paper defaults
	if *quick {
		*runs = 3
		gaCfg = core.Config{
			PopulationSize:      100,
			PairsPerGeneration:  30,
			StagnationLimit:     30,
			ImmigrantStagnation: 10,
		}
		*samples = 50
	}

	run := func(name string, fn func() error) {
		switch {
		case *which == name, *which == "all":
			fmt.Printf("\n=== %s ===\n", name)
			start := time.Now()
			if err := fn(); err != nil {
				fmt.Fprintf(os.Stderr, "ldexp: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("--- %s done in %s ---\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	var data *genotype.Dataset
	loadData := func() (*genotype.Dataset, error) {
		if data != nil {
			return data, nil
		}
		var err error
		data, err = popgen.Generate(popgen.Paper51(*seed))
		return data, err
	}

	run("table1", func() error {
		rows := exp.Table1([]int{51, 150, 249}, 2, 6)
		return exp.RenderTable1(os.Stdout, []int{51, 150, 249}, rows)
	})

	run("figure4", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		points, err := exp.Figure4(d, 2, 7, *samples, *seed)
		if err != nil {
			return err
		}
		return exp.RenderFigure4(os.Stdout, points)
	})

	run("landscape", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		maxSize := 3
		if !*quick {
			maxSize = 4 // the paper enumerated sizes 2-4 at 51 SNPs
		}
		rep, err := exp.Landscape(d, exp.LandscapeParams{MinSize: 2, MaxSize: maxSize, Workers: 0})
		if err != nil {
			return err
		}
		return exp.RenderLandscape(os.Stdout, rep)
	})

	run("table2", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		// Use the enumerated optima (sizes 2-3) as deviation
		// reference, like the paper compared against its landscape
		// study.
		ref, err := referenceBests(d)
		if err != nil {
			return err
		}
		res, err := exp.Table2(d, exp.Table2Params{
			Runs: *runs, Seed: *seed, GA: gaCfg, Slaves: *slaves, RefBest: ref,
		})
		if err != nil {
			return err
		}
		return exp.RenderTable2(os.Stdout, res)
	})

	run("ablation", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		abRuns := *runs
		if abRuns > 5 && !*quick {
			abRuns = 5 // 5 schemes x runs; keep the grid affordable
		}
		rows, err := exp.Ablation(d, exp.Table2Params{
			Runs: abRuns, Seed: *seed, GA: gaCfg, Slaves: *slaves,
		}, nil)
		if err != nil {
			return err
		}
		cfg := gaCfg
		if cfg.MinSize == 0 {
			cfg.MinSize = 2
		}
		if cfg.MaxSize == 0 {
			cfg.MaxSize = 6
		}
		return exp.RenderAblation(os.Stdout, rows, cfg.MinSize, cfg.MaxSize)
	})

	run("speedup", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		p := exp.SpeedupParams{
			Slaves:      []int{1, 2, 4, 8, 16},
			EvalLatency: 6 * time.Millisecond, // paper: ~6ms per size-3 evaluation
			Seed:        *seed,
		}
		if *quick {
			p.Slaves = []int{1, 2, 4}
			p.BatchSize = 50
			p.Batches = 1
		}
		points, err := exp.Speedup(d, p)
		if err != nil {
			return err
		}
		return exp.RenderSpeedup(os.Stdout, points, p)
	})

	run("baselines", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		p := exp.BaselinesParams{
			Size: 4, Budget: 5000, Runs: 3, Seed: *seed, Slaves: *slaves,
			IncludeExhaustive: !*quick,
		}
		rows, err := exp.Baselines(d, p)
		if err != nil {
			return err
		}
		return exp.RenderBaselines(os.Stdout, rows, p)
	})

	run("statcompare", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		scRuns := *runs
		if scRuns > 3 {
			scRuns = 3 // 4 statistics x runs; keep the grid affordable
		}
		rows, err := exp.StatCompare(d, exp.StatCompareParams{
			Runs: scRuns, Seed: *seed, GA: gaCfg, Slaves: *slaves,
		})
		if err != nil {
			return err
		}
		minS, maxS := 2, 6
		if gaCfg.MinSize != 0 {
			minS = gaCfg.MinSize
		}
		if gaCfg.MaxSize != 0 {
			maxS = gaCfg.MaxSize
		}
		var sizes []int
		for s := minS; s <= maxS; s++ {
			sizes = append(sizes, s)
		}
		if err := exp.RenderStatCompare(os.Stdout, rows, sizes); err != nil {
			return err
		}
		for i := 1; i < len(rows); i++ {
			fmt.Printf("agreement %s vs %s: %.3f\n",
				rows[0].Stat, rows[i].Stat, exp.StatAgreement(rows[0], rows[i]))
		}
		return nil
	})

	run("robust249", func() error {
		d249, err := popgen.Generate(popgen.Paper249(*seed))
		if err != nil {
			return err
		}
		rRuns := *runs
		if rRuns > 5 {
			rRuns = 5
		}
		res, err := exp.Robustness(d249, exp.RobustParams{
			Runs: rRuns, Seed: *seed, GA: gaCfg, Slaves: *slaves,
		})
		if err != nil {
			return err
		}
		minS, maxS := 2, 6
		if gaCfg.MinSize != 0 {
			minS = gaCfg.MinSize
		}
		if gaCfg.MaxSize != 0 {
			maxS = gaCfg.MaxSize
		}
		return exp.RenderRobustness(os.Stdout, res, minS, maxS)
	})
}

// referenceBests enumerates sizes 2 and 3 exhaustively to obtain exact
// optima for the Table 2 deviation column.
func referenceBests(d *genotype.Dataset) (map[int]float64, error) {
	rep, err := exp.Landscape(d, exp.LandscapeParams{MinSize: 2, MaxSize: 3, TopN: 1, Workers: 0})
	if err != nil {
		return nil, err
	}
	ref := make(map[int]float64)
	for _, s := range rep.Summaries {
		ref[s.K] = s.Best().Fitness
	}
	return ref, nil
}
