// Command ldexp regenerates every table and figure of the paper's
// evaluation section on the synthetic reproduction dataset.
//
// Experiments:
//
//	table1      search-space sizes (paper Table 1)
//	figure4     evaluation time vs haplotype size (paper Figure 4)
//	table2      GA results over repeated runs (paper Table 2)
//	ablation    with/without each advanced mechanism (paper §5.2)
//	speedup     master/slave scaling (paper §4.5 / Figure 6)
//	landscape   exhaustive structure study (paper §3)
//	baselines   dedicated GA vs the methods §3 rules out
//	statcompare objective-function comparison (paper conclusion / future work)
//	robust249   cross-run solution stability at 249 SNPs (paper §5.2)
//	island      async island model vs synchronous engine (wall-clock, cost, quality)
//	all         everything above
//
// SIGINT/SIGTERM interrupt gracefully: the experiment in progress
// renders whatever it completed (runs, schemes, sizes) and the
// remaining experiments are skipped.
//
// Usage:
//
//	ldexp -exp table2 -runs 10 -seed 1
//	ldexp -exp all -quick
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/genotype"
	"repro/internal/popgen"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment id (table1|figure4|table2|ablation|speedup|landscape|baselines|statcompare|robust249|island|all)")
		seed    = flag.Uint64("seed", 1, "master seed")
		runs    = flag.Int("runs", 10, "GA runs per experiment (paper: 10)")
		slaves  = flag.Int("slaves", 0, "evaluation slaves (0 = one per CPU)")
		quick   = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		samples = flag.Int("samples", 200, "random haplotypes per size for figure4")
	)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	gaCfg := core.Config{} // paper defaults
	if *quick {
		*runs = 3
		gaCfg = core.Config{
			PopulationSize:      100,
			PairsPerGeneration:  30,
			StagnationLimit:     30,
			ImmigrantStagnation: 10,
		}
		*samples = 50
	}

	interrupted := false
	run := func(name string, fn func() error) {
		switch {
		case *which == name, *which == "all":
			if ctx.Err() != nil {
				interrupted = true // interrupted between experiments; skip the rest
				return
			}
			fmt.Printf("\n=== %s ===\n", name)
			start := time.Now()
			err := fn()
			switch {
			case err == nil:
				fmt.Printf("--- %s done in %s ---\n", name, time.Since(start).Round(time.Millisecond))
			case errors.Is(err, context.Canceled):
				interrupted = true
				fmt.Printf("--- %s interrupted after %s — partial results above ---\n",
					name, time.Since(start).Round(time.Millisecond))
			default:
				fmt.Fprintf(os.Stderr, "ldexp: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}

	var data *genotype.Dataset
	loadData := func() (*genotype.Dataset, error) {
		if data != nil {
			return data, nil
		}
		var err error
		data, err = popgen.Generate(popgen.Paper51(*seed))
		return data, err
	}

	run("table1", func() error {
		rows := exp.Table1([]int{51, 150, 249}, 2, 6)
		return exp.RenderTable1(os.Stdout, []int{51, 150, 249}, rows)
	})

	run("figure4", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		points, err := exp.Figure4(ctx, d, 2, 7, *samples, *seed)
		if len(points) > 0 {
			if rerr := exp.RenderFigure4(os.Stdout, points); rerr != nil {
				return rerr
			}
		}
		return err
	})

	run("landscape", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		maxSize := 3
		if !*quick {
			maxSize = 4 // the paper enumerated sizes 2-4 at 51 SNPs
		}
		rep, err := exp.Landscape(ctx, d, exp.LandscapeParams{MinSize: 2, MaxSize: maxSize, Workers: 0})
		if rep != nil {
			if rerr := exp.RenderLandscape(os.Stdout, rep); rerr != nil {
				return rerr
			}
		}
		return err
	})

	run("table2", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		// Use the enumerated optima (sizes 2-3) as deviation
		// reference, like the paper compared against its landscape
		// study.
		ref, err := referenceBests(ctx, d)
		if err != nil {
			return err
		}
		res, err := exp.Table2(ctx, d, exp.Table2Params{
			Runs: *runs, Seed: *seed, GA: gaCfg, Slaves: *slaves, RefBest: ref,
		})
		if res != nil {
			if rerr := exp.RenderTable2(os.Stdout, res); rerr != nil {
				return rerr
			}
		}
		return err
	})

	run("ablation", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		abRuns := *runs
		if abRuns > 5 && !*quick {
			abRuns = 5 // 5 schemes x runs; keep the grid affordable
		}
		rows, err := exp.Ablation(ctx, d, exp.Table2Params{
			Runs: abRuns, Seed: *seed, GA: gaCfg, Slaves: *slaves,
		}, nil)
		if len(rows) > 0 {
			cfg := gaCfg
			if cfg.MinSize == 0 {
				cfg.MinSize = 2
			}
			if cfg.MaxSize == 0 {
				cfg.MaxSize = 6
			}
			if rerr := exp.RenderAblation(os.Stdout, rows, cfg.MinSize, cfg.MaxSize); rerr != nil {
				return rerr
			}
		}
		return err
	})

	run("speedup", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		p := exp.SpeedupParams{
			Slaves:      []int{1, 2, 4, 8, 16},
			EvalLatency: 6 * time.Millisecond, // paper: ~6ms per size-3 evaluation
			Seed:        *seed,
		}
		if *quick {
			p.Slaves = []int{1, 2, 4}
			p.BatchSize = 50
			p.Batches = 1
		}
		points, err := exp.Speedup(ctx, d, p)
		if len(points) > 0 {
			if rerr := exp.RenderSpeedup(os.Stdout, points, p); rerr != nil {
				return rerr
			}
		}
		return err
	})

	run("baselines", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		p := exp.BaselinesParams{
			Size: 4, Budget: 5000, Runs: 3, Seed: *seed, Slaves: *slaves,
			IncludeExhaustive: !*quick,
		}
		rows, err := exp.Baselines(ctx, d, p)
		if len(rows) > 0 {
			if rerr := exp.RenderBaselines(os.Stdout, rows, p); rerr != nil {
				return rerr
			}
		}
		return err
	})

	run("statcompare", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		scRuns := *runs
		if scRuns > 3 {
			scRuns = 3 // 4 statistics x runs; keep the grid affordable
		}
		rows, err := exp.StatCompare(ctx, d, exp.StatCompareParams{
			Runs: scRuns, Seed: *seed, GA: gaCfg, Slaves: *slaves,
		})
		if len(rows) > 0 {
			minS, maxS := 2, 6
			if gaCfg.MinSize != 0 {
				minS = gaCfg.MinSize
			}
			if gaCfg.MaxSize != 0 {
				maxS = gaCfg.MaxSize
			}
			var sizes []int
			for s := minS; s <= maxS; s++ {
				sizes = append(sizes, s)
			}
			if rerr := exp.RenderStatCompare(os.Stdout, rows, sizes); rerr != nil {
				return rerr
			}
			for i := 1; i < len(rows); i++ {
				fmt.Printf("agreement %s vs %s: %.3f\n",
					rows[0].Stat, rows[i].Stat, exp.StatAgreement(rows[0], rows[i]))
			}
		}
		return err
	})

	run("robust249", func() error {
		d249, err := popgen.Generate(popgen.Paper249(*seed))
		if err != nil {
			return err
		}
		rRuns := *runs
		if rRuns > 5 {
			rRuns = 5
		}
		res, err := exp.Robustness(ctx, d249, exp.RobustParams{
			Runs: rRuns, Seed: *seed, GA: gaCfg, Slaves: *slaves,
		})
		if res != nil {
			minS, maxS := 2, 6
			if gaCfg.MinSize != 0 {
				minS = gaCfg.MinSize
			}
			if gaCfg.MaxSize != 0 {
				maxS = gaCfg.MaxSize
			}
			if rerr := exp.RenderRobustness(os.Stdout, res, minS, maxS); rerr != nil {
				return rerr
			}
		}
		return err
	})

	run("island", func() error {
		d, err := loadData()
		if err != nil {
			return err
		}
		iRuns := *runs
		if iRuns > 3 {
			iRuns = 3 // several modes x runs to convergence; keep affordable
		}
		p := exp.IslandCompareParams{
			Runs: iRuns, Seed: *seed, Workers: *slaves, GA: gaCfg,
		}
		rows, err := exp.IslandCompare(ctx, d, p)
		if len(rows) > 0 {
			minS, maxS := 2, 6
			if gaCfg.MinSize != 0 {
				minS = gaCfg.MinSize
			}
			if gaCfg.MaxSize != 0 {
				maxS = gaCfg.MaxSize
			}
			if rerr := exp.RenderIslandCompare(os.Stdout, rows, minS, maxS); rerr != nil {
				return rerr
			}
		}
		return err
	})

	if interrupted {
		fmt.Fprintln(os.Stderr, "ldexp: interrupted — remaining experiments skipped")
		os.Exit(130)
	}
}

// referenceBests enumerates sizes 2 and 3 exhaustively to obtain exact
// optima for the Table 2 deviation column.
func referenceBests(ctx context.Context, d *genotype.Dataset) (map[int]float64, error) {
	rep, err := exp.Landscape(ctx, d, exp.LandscapeParams{MinSize: 2, MaxSize: 3, TopN: 1, Workers: 0})
	if err != nil {
		return nil, err
	}
	ref := make(map[int]float64)
	for _, s := range rep.Summaries {
		ref[s.K] = s.Best().Fitness
	}
	return ref, nil
}
