package repro_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
)

// TestConcurrentStartsShareSession: concurrent Session.Start calls on
// one unlimited session are safe — every job runs to completion and,
// with the session's default seed, reproduces the synchronous run bit
// for bit.
func TestConcurrentStartsShareSession(t *testing.T) {
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithWorkers(2), repro.WithGAConfig(backendTestConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 4
	jobs := make([]*repro.Job, n)
	startErrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], startErrs[i] = s.Start(context.Background())
		}(i)
	}
	wg.Wait()
	ref, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if startErrs[i] != nil {
			t.Fatalf("concurrent Start %d failed: %v", i, startErrs[i])
		}
		res, err := jobs[i].Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		assertSameResult(t, fmt.Sprintf("job%d-vs-run", i), ref, res)
	}
	if got := s.ActiveJobs(); got != 0 {
		t.Fatalf("ActiveJobs = %d after all jobs finished, want 0", got)
	}
}

// TestJobLimitRejectsWithErrSessionBusy: a WithJobLimit session
// rejects Start beyond the cap with the typed sentinel, and frees the
// slot when the job ends.
func TestJobLimitRejectsWithErrSessionBusy(t *testing.T) {
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithWorkers(2),
		repro.WithJobLimit(1), repro.WithGAConfig(longRunConfig(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.JobLimit(); got != 1 {
		t.Fatalf("JobLimit = %d, want 1", got)
	}
	job, err := s.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(context.Background()); !errors.Is(err, repro.ErrSessionBusy) {
		t.Fatalf("second Start err = %v, want ErrSessionBusy", err)
	}
	if got := s.ActiveJobs(); got != 1 {
		t.Fatalf("ActiveJobs = %d, want 1", got)
	}
	if _, err := job.Stop(); !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("Stop err = %v, want ErrCanceled", err)
	}
	// The slot is free again: a short job starts and finishes.
	job2, err := s.Start(context.Background(), repro.WithGAConfig(backendTestConfig()))
	if err != nil {
		t.Fatalf("Start after the slot freed: %v", err)
	}
	if _, err := job2.Wait(); err != nil {
		t.Fatal(err)
	}
	// WithJobLimit is session-level only.
	if _, err := s.Run(context.Background(), repro.WithJobLimit(2)); !errors.Is(err, repro.ErrBadConfig) {
		t.Fatalf("run-level WithJobLimit err = %v, want ErrBadConfig", err)
	}
}

// TestJobLimitUnderStartRace: with limit 2, eight racing Start calls
// admit exactly two jobs — the reservation is atomic, never
// overshooting the cap.
func TestJobLimitUnderStartRace(t *testing.T) {
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithWorkers(2),
		repro.WithJobLimit(2), repro.WithGAConfig(longRunConfig(13)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 8
	var mu sync.Mutex
	var admitted []*repro.Job
	busy := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := s.Start(context.Background())
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				admitted = append(admitted, job)
			case errors.Is(err, repro.ErrSessionBusy):
				busy++
			default:
				t.Errorf("Start: %v", err)
			}
		}()
	}
	wg.Wait()
	if len(admitted) != 2 || busy != n-2 {
		t.Fatalf("admitted %d jobs, %d busy; want 2 and %d", len(admitted), busy, n-2)
	}
	for _, job := range admitted {
		job.Stop()
	}
}

// TestJobProgressConflatesUnderSlowConsumer: the server's SSE path
// depends on the documented Progress contract — a consumer that stops
// reading never blocks the GA, and when it resumes it sees conflated
// (gapped) but strictly ordered entries.
func TestJobProgressConflatesUnderSlowConsumer(t *testing.T) {
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithWorkers(2), repro.WithGAConfig(longRunConfig(11)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first, ok := <-job.Progress()
	if !ok {
		t.Fatal("progress closed before the first generation")
	}
	// Stop consuming entirely. The GA must keep running far past the
	// progress buffer's capacity — if a full buffer could block the
	// generation loop, this would never reach the target.
	target := first.Generation + 60
	deadline := time.Now().Add(30 * time.Second)
	for job.Report().Generation < target {
		if time.Now().After(deadline) {
			t.Fatalf("GA stalled at generation %d with an unread progress buffer (target %d)",
				job.Report().Generation, target)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Resume reading: entries must be strictly ordered, and the slow
	// consumer must have missed generations (the buffer conflated).
	last := first.Generation
	sawGap := false
	for i := 0; i < 10; i++ {
		e, ok := <-job.Progress()
		if !ok {
			t.Fatalf("progress closed unexpectedly at generation %d", last)
		}
		if e.Generation <= last {
			t.Fatalf("progress out of order: %d after %d", e.Generation, last)
		}
		if e.Generation > last+1 {
			sawGap = true
		}
		last = e.Generation
	}
	if !sawGap {
		t.Fatal("slow consumer saw every generation; conflation should have dropped old entries")
	}
	res, err := job.Stop()
	if !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("Stop err = %v, want ErrCanceled", err)
	}
	if res.Generations < target {
		t.Fatalf("run stopped at generation %d, want at least %d (GA must not wait on the consumer)",
			res.Generations, target)
	}
	for range job.Progress() {
	}
}
