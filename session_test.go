package repro_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/testleak"
)

// longRunConfig is a configuration that keeps the GA busy long enough
// to cancel it deterministically mid-run.
func longRunConfig(seed uint64) repro.GAConfig {
	cfg := backendTestConfig()
	cfg.Seed = seed
	cfg.StagnationLimit = 100000
	cfg.MaxGenerations = 100000
	return cfg
}

// TestSessionCancelStopsWithinOneGeneration: under every backend, a
// context cancelled in generation N's trace stops the run with exactly
// N completed generations and a usable partial result.
func TestSessionCancelStopsWithinOneGeneration(t *testing.T) {
	d := backendTestDataset(t)
	for _, bc := range []struct {
		name    string
		backend repro.Backend
	}{
		{"native", repro.BackendNative},
		{"pool", repro.BackendPool},
		{"pvm", repro.BackendPVM},
	} {
		t.Run(bc.name, func(t *testing.T) {
			testleak.Check(t)
			s, err := repro.NewSession(d, repro.WithBackend(bc.backend), repro.WithWorkers(3))
			if err != nil {
				t.Fatal(err)
			}
			const cancelAt = 2
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			res, err := s.Run(ctx,
				repro.WithGAConfig(longRunConfig(5)),
				repro.WithTrace(func(e repro.TraceEntry) {
					if e.Generation == cancelAt {
						cancel()
					}
				}))
			if !errors.Is(err, repro.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want the context error in the chain", err)
			}
			if res == nil {
				t.Fatal("cancelled run returned no partial result")
			}
			if res.Generations != cancelAt {
				t.Fatalf("completed %d generations, want %d (stop within one generation of cancel)",
					res.Generations, cancelAt)
			}
			if len(res.BestBySize) == 0 {
				t.Fatal("partial result carries no per-size bests")
			}
			s.Close()
		})
	}
}

func TestSessionDeadlineWrapsErrCanceled(t *testing.T) {
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := s.Run(ctx, repro.WithGAConfig(longRunConfig(5)))
	if !errors.Is(err, repro.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("deadline-stopped run returned no result")
	}
}

// TestJobStopYieldsPartialResult: a background Job stopped mid-run
// returns a usable partial result in bounded time, closes its progress
// stream, and leaks no goroutines.
func TestJobStopYieldsPartialResult(t *testing.T) {
	testleak.Check(t)
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithWorkers(2),
		repro.WithGAConfig(longRunConfig(7)))
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Let at least two generations stream, then stop.
	seen := 0
	for e := range job.Progress() {
		if e.Generation < 1 {
			t.Fatalf("trace entry with generation %d", e.Generation)
		}
		seen++
		if seen == 2 {
			break
		}
	}
	rep := job.Report()
	if !rep.Running || rep.Generation < 1 || rep.Evaluations <= 0 {
		t.Fatalf("live report %+v, want a running job past generation 1", rep)
	}
	if rep.Engine == nil || rep.Engine.Requests <= 0 {
		t.Fatalf("live report lacks engine counters: %+v", rep.Engine)
	}
	type stopOutcome struct {
		res *repro.GAResult
		err error
	}
	done := make(chan stopOutcome, 1)
	go func() {
		res, err := job.Stop()
		done <- stopOutcome{res, err}
	}()
	var oc stopOutcome
	select {
	case oc = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Job.Stop did not return in bounded time")
	}
	if !errors.Is(oc.err, repro.ErrCanceled) {
		t.Fatalf("Stop err = %v, want ErrCanceled", oc.err)
	}
	if oc.res == nil || len(oc.res.BestBySize) == 0 || oc.res.Generations < 1 {
		t.Fatalf("Stop returned unusable partial result: %+v", oc.res)
	}
	// The stream must drain and close, the snapshot must settle.
	for range job.Progress() {
	}
	if rep := job.Report(); rep.Running {
		t.Fatal("report still Running after Stop")
	}
	// Wait is stable across repeated calls.
	res2, err2 := job.Wait()
	if res2 != oc.res || !errors.Is(err2, repro.ErrCanceled) {
		t.Fatal("Wait after Stop returned a different outcome")
	}
	s.Close()
}

// TestJobCompletionStreamsProgress: an uncancelled Job streams ordered
// progress entries, closes the stream, and Wait matches a synchronous
// run bit for bit.
func TestJobCompletionStreamsProgress(t *testing.T) {
	d := backendTestDataset(t)
	cfg := backendTestConfig()
	s, err := repro.NewSession(d, repro.WithWorkers(2), repro.WithGAConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	entries := 0
	for e := range job.Progress() {
		if e.Generation <= last {
			t.Fatalf("progress out of order: %d after %d", e.Generation, last)
		}
		last = e.Generation
		entries++
	}
	res, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if entries == 0 || last != res.Generations {
		t.Fatalf("streamed %d entries ending at gen %d, result has %d generations",
			entries, last, res.Generations)
	}
	// The same seed run synchronously is bit-identical.
	ref, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "job-vs-run", ref, res)
}

func TestSessionCachePersistsAcrossRuns(t *testing.T) {
	d := backendTestDataset(t)
	s, err := repro.NewSession(d, repro.WithWorkers(2), repro.WithGAConfig(backendTestConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep1, ok := s.Report()
	if !ok {
		t.Fatal("native session has no report")
	}
	second, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep2, _ := s.Report()
	assertSameResult(t, "run2-vs-run1", first, second)
	if rep2.Computed != rep1.Computed {
		t.Fatalf("second identical run computed %d new evaluations; the session cache should have served all %d",
			rep2.Computed-rep1.Computed, rep2.Requests-rep1.Requests)
	}
	if rep2.CacheHits <= rep1.CacheHits {
		t.Fatal("second run produced no additional cache hits")
	}
}

func TestOptionValidation(t *testing.T) {
	d := backendTestDataset(t)

	// The Statistic zero value is rejected, never silently defaulted.
	if _, err := repro.NewSession(d, repro.WithStatistic(0)); !errors.Is(err, repro.ErrBadConfig) {
		t.Fatalf("WithStatistic(0): err = %v, want ErrBadConfig", err)
	}
	if _, err := repro.NewSession(d, repro.WithBackend(repro.Backend(42))); !errors.Is(err, repro.ErrBadConfig) {
		t.Fatalf("bad backend: err = %v, want ErrBadConfig", err)
	}
	if _, err := repro.NewSession(d, repro.WithWorkers(-1)); !errors.Is(err, repro.ErrBadConfig) {
		t.Fatalf("negative workers: err = %v, want ErrBadConfig", err)
	}
	if _, err := repro.NewSession(nil); !errors.Is(err, repro.ErrBadDataset) {
		t.Fatalf("nil dataset: err = %v, want ErrBadDataset", err)
	}

	s, err := repro.NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Statistic() != repro.DefaultStatistic || s.Statistic() != repro.T1 {
		t.Fatalf("default statistic = %v, want T1", s.Statistic())
	}
	// Backend-shaping options are rejected at run level.
	for name, opt := range map[string]repro.Option{
		"WithStatistic": repro.WithStatistic(repro.T2),
		"WithBackend":   repro.WithBackend(repro.BackendPool),
		"WithWorkers":   repro.WithWorkers(2),
	} {
		if _, err := s.Run(context.Background(), opt); !errors.Is(err, repro.ErrBadConfig) {
			t.Fatalf("%s at run level: err = %v, want ErrBadConfig", name, err)
		}
	}
	// An invalid GAConfig surfaces as ErrBadConfig.
	if _, err := s.Run(context.Background(), repro.WithGAConfig(repro.GAConfig{MinSize: 5, MaxSize: 3})); !errors.Is(err, repro.ErrBadConfig) {
		t.Fatalf("bad GAConfig: err = %v, want ErrBadConfig", err)
	}
}

// TestCloseUnderRunningJobSurfacesError: closing the session while a
// job runs must not let the starved GA report a bogus convergence —
// the job ends with an error wrapping ErrSessionClosed. The search
// space must dwarf what the cache can absorb before Close, or the run
// could legitimately finish on cached values alone.
func TestCloseUnderRunningJobSurfacesError(t *testing.T) {
	d, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: 40, NumAffected: 30, NumUnaffected: 30,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{3, 9}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.NewSession(d, repro.WithWorkers(2),
		repro.WithGAConfig(longRunConfig(9)))
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Let the run get going, then pull the backend out from under it.
	for e := range job.Progress() {
		if e.Generation >= 1 {
			break
		}
	}
	s.Close()
	res, err := job.Wait()
	if !errors.Is(err, repro.ErrSessionClosed) {
		t.Fatalf("err = %v, want ErrSessionClosed (not a silent bogus convergence)", err)
	}
	if res == nil {
		t.Fatal("no partial result from the interrupted job")
	}
	if res.Converged {
		t.Fatal("starved run reported convergence")
	}
}

func TestClosedSessionRejectsRuns(t *testing.T) {
	d := backendTestDataset(t)
	s, err := repro.NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if _, err := s.Run(context.Background(), repro.WithGAConfig(backendTestConfig())); !errors.Is(err, repro.ErrSessionClosed) {
		t.Fatalf("Run on closed session: err = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Start(context.Background(), repro.WithGAConfig(backendTestConfig())); !errors.Is(err, repro.ErrSessionClosed) {
		t.Fatalf("Start on closed session: err = %v, want ErrSessionClosed", err)
	}
}

// TestStatisticZeroShimBehavior: the deprecated RunOptions zero value
// selects DefaultStatistic, matching an explicit WithStatistic(T1)
// session bit for bit.
func TestStatisticZeroShimBehavior(t *testing.T) {
	d := backendTestDataset(t)
	cfg := backendTestConfig()

	shim, err := repro.Run(d, cfg, repro.RunOptions{}) //nolint:staticcheck // deprecated shim under test
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.NewSession(d, repro.WithStatistic(repro.T1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	explicit, err := s.Run(context.Background(), repro.WithGAConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "shim-default-vs-explicit-T1", explicit, shim)
}

func TestRunWithShimOverSession(t *testing.T) {
	d := backendTestDataset(t)
	cfg := backendTestConfig()
	eng, err := repro.NewEngine(d, repro.T1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	viaShim, err := repro.RunWith(eng, d.NumSNPs(), cfg) //nolint:staticcheck // deprecated shim under test
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.NewSession(d, repro.WithEvaluator(eng))
	if err != nil {
		t.Fatal(err)
	}
	// A WithEvaluator session does not close the caller's engine.
	defer s.Close()
	viaSession, err := s.Run(context.Background(), repro.WithGAConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "runwith-vs-withevaluator", viaSession, viaShim)
	if _, err := eng.Evaluate([]int{0, 1}); err != nil {
		t.Fatalf("session Close closed the caller-owned engine: %v", err)
	}

	// WithStatistic may accompany WithEvaluator as a declaration;
	// WithBackend/WithWorkers may not.
	s2, err := repro.NewSession(d, repro.WithEvaluator(eng), repro.WithStatistic(repro.T1))
	if err != nil {
		t.Fatalf("WithStatistic alongside WithEvaluator: %v", err)
	}
	if s2.Statistic() != repro.T1 {
		t.Fatalf("declared statistic = %v, want T1", s2.Statistic())
	}
	s2.Close()
	if _, err := repro.NewSession(d, repro.WithEvaluator(eng), repro.WithWorkers(2)); !errors.Is(err, repro.ErrBadConfig) {
		t.Fatalf("WithWorkers alongside WithEvaluator: err = %v, want ErrBadConfig", err)
	}
}
