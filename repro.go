// Package repro is a from-scratch Go reproduction of "A Parallel
// Adaptive GA for Linkage Disequilibrium in Genomics"
// (Vermeulen-Jourdan, Dhaenens, Talbi — IPDPS 2004).
//
// The library searches case/control SNP datasets for haplotypes
// (associations of 2–6 SNPs) that explain a disease status, scoring
// each candidate with the paper's EH-DIALL → CLUMP statistical
// pipeline and exploring the space with a multipopulation adaptive
// genetic algorithm. Evaluation runs, by default, on the native
// concurrent engine (a goroutine worker pool with a memoizing fitness
// cache); the paper's synchronous master/slave protocol and its PVM-3
// simulation remain available as pluggable backends for fidelity
// experiments.
//
// This package is the public facade: it re-exports the user-facing
// types of the internal packages and provides the Session API for the
// common workflows. The building blocks live in internal/ (genotype
// model, synthetic population generator, linkage disequilibrium,
// EH-DIALL EM estimator, CLUMP statistics, fitness pipeline, the GA
// itself, master/slave evaluation, landscape analysis, baselines and
// the experiment harness).
//
// Quick start — a Session owns the dataset plus its evaluation
// backend, so the memoizing fitness cache persists across runs:
//
//	data, _ := repro.Paper51Dataset(1)
//	session, _ := repro.NewSession(data)
//	defer session.Close()
//	result, _ := session.Run(ctx, repro.WithGAConfig(repro.GAConfig{Seed: 1}))
//	for size, best := range result.BestBySize {
//	    fmt.Printf("size %d: %s\n", size, best)
//	}
//
// Runs honor ctx end to end: cancellation or a deadline stops the GA
// within one generation and returns the partial result together with
// an error wrapping ErrCanceled.
//
// Two GA engines share one set of operators: the synchronous
// paper-fidelity engine (the default; bit-reproducible under every
// backend for a fixed seed) and an asynchronous island model
// (WithIslands, tuned by WithMigration) that partitions the per-size
// subpopulations across concurrently evolving islands exchanging
// elites over conflating channels — no generation barrier, local
// convergence per island, per-island statistics in GAResult.Islands.
// WithIslands(1) is guaranteed bit-identical to the synchronous
// engine; see internal/island for the full determinism contract.
//
// For a background run with streaming progress, use Session.Start
// and the returned Job:
//
//	job, _ := session.Start(ctx)
//	for entry := range job.Progress() {
//	    fmt.Printf("gen %d: %v\n", entry.Generation, entry.BestBySize)
//	}
//	result, err := job.Wait() // or job.Stop() for a partial result
//
// The pre-Session entry points (Run, RunWith, RunOptions) remain as
// deprecated thin shims over Sessions and produce bit-identical
// results.
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/clump"
	"repro/internal/core"
	"repro/internal/ehdiall"
	"repro/internal/engine"
	"repro/internal/fitness"
	"repro/internal/genotype"
	"repro/internal/master"
	"repro/internal/popgen"
	"repro/internal/pvm"
)

// Re-exported data model types.
type (
	// Dataset is a case/control SNP study table.
	Dataset = genotype.Dataset
	// Individual is one study subject.
	Individual = genotype.Individual
	// SNP is one biallelic marker.
	SNP = genotype.SNP
	// Genotype is the per-SNP diploid genotype coding.
	Genotype = genotype.Genotype
	// Status is the affection status of an individual.
	Status = genotype.Status
)

// Affection statuses.
const (
	Affected   = genotype.Affected
	Unaffected = genotype.Unaffected
	Unknown    = genotype.Unknown
)

// Re-exported GA types.
type (
	// GAConfig holds the GA parameters (§5.2.1 defaults apply).
	GAConfig = core.Config
	// GAResult is a finished run's outcome.
	GAResult = core.Result
	// Haplotype is one GA individual (a SNP association).
	Haplotype = core.Haplotype
	// TraceEntry is a per-generation snapshot. In island mode (see
	// WithIslands) each entry describes one island's local generation
	// and is stamped with TraceEntry.Island.
	TraceEntry = core.TraceEntry
	// IslandStat is one island's share of a multi-island GAResult:
	// hosted sizes, local counters, and migration traffic.
	IslandStat = core.IslandStat
)

// Statistic selects the CLUMP statistic used as fitness.
type Statistic = clump.Statistic

// The four CLUMP statistics (the paper's fitness is T1 by default).
const (
	T1 = clump.T1
	T2 = clump.T2
	T3 = clump.T3
	T4 = clump.T4
	// AA is the canonical allelic-association measure of Scholz &
	// Hasenclever: the strongest 2-way clumping of the haplotype
	// table scored as a sample-size-free association on [0, 1).
	AA = clump.AA
)

// Evaluator scores haplotypes; see NewEvaluator and
// NewParallelEvaluator.
type Evaluator = fitness.Evaluator

// GeneratorConfig configures the synthetic dataset generator that
// substitutes for the paper's proprietary Lille data.
type GeneratorConfig = popgen.Config

// DiseaseModel plants an epistatic risk haplotype in generated data.
type DiseaseModel = popgen.DiseaseModel

// Paper51Dataset generates the default 51-SNP study (53 affected, 53
// healthy, 70 unknown individuals) with the planted risk haplotype on
// SNPs 8, 12, 15, 21, 32 and 43 — the SNP numbers of the paper's best
// size-6 haplotype.
func Paper51Dataset(seed uint64) (*Dataset, error) {
	return popgen.Generate(popgen.Paper51(seed))
}

// Paper249Dataset generates the paper's larger 249-SNP study shape.
func Paper249Dataset(seed uint64) (*Dataset, error) {
	return popgen.Generate(popgen.Paper249(seed))
}

// GenerateDataset runs the synthetic generator with a custom
// configuration.
func GenerateDataset(cfg GeneratorConfig) (*Dataset, error) {
	return popgen.Generate(cfg)
}

// ReadDataset parses a dataset from its text table format.
func ReadDataset(r io.Reader) (*Dataset, error) { return genotype.Read(r) }

// ReadPEDDataset parses a LINKAGE-style pedigree file ("pre-makeped"
// layout, the format the original EH-DIALL tool chain consumed) with
// numSNPs markers. LINKAGE files do not carry the marker count, so it
// must be supplied.
func ReadPEDDataset(r io.Reader, numSNPs int) (*Dataset, error) {
	return genotype.ReadPED(r, numSNPs)
}

// ReadDatasetFile parses a dataset file.
func ReadDatasetFile(path string) (*Dataset, error) { return genotype.ReadFile(path) }

// WriteDataset serializes a dataset in the text table format.
func WriteDataset(w io.Writer, d *Dataset) error { return genotype.Write(w, d) }

// NewEvaluator builds the paper's Figure 3 evaluation pipeline
// (EH-DIALL per status group, concatenation, CLUMP statistic) over the
// dataset, on the packed 2-bit counting kernel. The evaluator is safe
// for concurrent use.
func NewEvaluator(d *Dataset, stat Statistic) (Evaluator, error) {
	return fitness.NewPipeline(d, stat, ehdiall.Config{})
}

// NewEvaluatorKernel is NewEvaluator with an explicit kernel choice:
// packed selects the 2-bit popcount kernel (the default), false the
// byte-per-genotype reference implementation. Both produce
// bit-identical fitness values.
func NewEvaluatorKernel(d *Dataset, stat Statistic, packed bool) (Evaluator, error) {
	return fitness.NewPipelineKernel(d, stat, ehdiall.Config{}, packed)
}

// ParallelEvaluator is a synchronous master/slave evaluator (§4.5).
// Close it when done.
type ParallelEvaluator interface {
	Evaluator
	// EvaluateBatch evaluates a whole generation with a synchronous
	// barrier; results are positional.
	EvaluateBatch(batch [][]int) ([]float64, []error)
	// Slaves returns the worker count.
	Slaves() int
	// Close stops the slaves.
	Close()
}

// NewParallelEvaluator wraps the Figure 3 pipeline in a master/slave
// pool with the given number of slaves (0 = one per CPU). This is the
// paper-fidelity goroutine backend; NewEngine is the faster native
// engine.
func NewParallelEvaluator(d *Dataset, stat Statistic, slaves int) (ParallelEvaluator, error) {
	pipe, err := fitness.NewPipeline(d, stat, ehdiall.Config{})
	if err != nil {
		return nil, err
	}
	return master.NewPool(pipe, slaves)
}

// NativeEngine is the native concurrent evaluation engine: a goroutine
// worker pool over the Figure 3 pipeline with a sharded memoizing
// fitness cache (see internal/engine for the cache-key
// canonicalization rule). It implements ParallelEvaluator and exposes
// cumulative counters through its Report method.
type NativeEngine = engine.Engine

// EngineReport is the counters report of an evaluation backend: cache
// hit-rate, computed evaluations, and per-worker throughput.
type EngineReport = fitness.Report

// NewEngine builds a native engine over the dataset with the given
// number of workers (0 = one per CPU), on the packed 2-bit counting
// kernel. Close it when done.
func NewEngine(d *Dataset, stat Statistic, workers int) (*NativeEngine, error) {
	return engine.NewForDataset(d, stat, engine.Options{Workers: workers})
}

// NewEngineKernel is NewEngine with an explicit kernel choice; see
// WithPackedKernel for the semantics.
func NewEngineKernel(d *Dataset, stat Statistic, workers int, packed bool) (*NativeEngine, error) {
	return engine.NewForDataset(d, stat, engine.Options{Workers: workers, ByteKernel: !packed})
}

// Backend selects the parallel evaluation backend behind Run.
type Backend int

const (
	// BackendNative is the default: the native worker-pool engine
	// with the memoizing fitness cache.
	BackendNative Backend = iota
	// BackendPool is the paper-fidelity goroutine master/slave pool
	// without memoization.
	BackendPool
	// BackendPVM routes every evaluation through the PVM-3 simulation
	// (packed messages over the virtual machine) with
	// pvm.DefaultMessageLatency of emulated network transit per
	// message, reproducing both the structure and the communication
	// cost of the 2004 implementation. Use master.NewPVMEvaluator
	// directly for a PVM backend with custom (or zero) latency.
	BackendPVM
)

// NewBackend constructs the selected evaluation backend over the
// dataset with the given number of workers (0 = one per CPU). Close
// the returned evaluator when done.
func NewBackend(d *Dataset, stat Statistic, backend Backend, workers int) (ParallelEvaluator, error) {
	return NewBackendKernel(d, stat, backend, workers, true)
}

// NewBackendKernel is NewBackend with an explicit kernel choice: every
// backend's pipeline runs the packed 2-bit kernel when packed is true
// (the default elsewhere), the byte reference implementation
// otherwise. A fixed GA seed produces the identical result under
// either kernel on every backend.
func NewBackendKernel(d *Dataset, stat Statistic, backend Backend, workers int, packed bool) (ParallelEvaluator, error) {
	switch backend {
	case BackendNative:
		return NewEngineKernel(d, stat, workers, packed)
	case BackendPool:
		pipe, err := fitness.NewPipelineKernel(d, stat, ehdiall.Config{}, packed)
		if err != nil {
			return nil, err
		}
		return master.NewPool(pipe, workers)
	case BackendPVM:
		pipe, err := fitness.NewPipelineKernel(d, stat, ehdiall.Config{}, packed)
		if err != nil {
			return nil, err
		}
		return master.NewPVMEvaluator(pipe, workers, pvm.WithLatency(pvm.DefaultMessageLatency))
	}
	return nil, fmt.Errorf("repro: unknown backend %d", backend)
}

// RunOptions tunes the deprecated one-call Run entry point.
//
// Deprecated: use NewSession with functional options (WithStatistic,
// WithBackend, WithWorkers) instead. RunOptions cannot distinguish an
// unset Statistic from an explicit zero value — the options API can.
type RunOptions struct {
	// Statistic selects the fitness (the zero value means
	// DefaultStatistic, T1).
	Statistic Statistic
	// Slaves sizes the evaluation worker pool (0 = one per CPU).
	Slaves int
	// Backend selects the evaluation backend (default BackendNative).
	// A fixed seed produces the identical GAResult under every
	// backend; they differ only in speed.
	Backend Backend
}

// Run executes the complete published method on a dataset: it builds
// the evaluation pipeline, starts the selected evaluation backend
// (the native engine by default), runs the multipopulation adaptive
// GA and returns its per-size best haplotypes.
//
// Deprecated: use NewSession and Session.Run. A Session keeps the
// evaluation backend — and its memoizing fitness cache — alive across
// runs, and its runs are cancellable through a context. Run is a thin
// shim over a throwaway single-run Session and produces bit-identical
// results.
func Run(d *Dataset, cfg GAConfig, opts RunOptions) (*GAResult, error) {
	stat := opts.Statistic
	if stat == 0 {
		stat = DefaultStatistic // zero value always meant "unset" here
	}
	slaves := opts.Slaves
	if slaves < 0 {
		slaves = 0 // the pre-Session backends treated any n <= 0 as one per CPU
	}
	s, err := NewSession(d,
		WithStatistic(stat),
		WithBackend(opts.Backend),
		WithWorkers(slaves))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(context.Background(), WithGAConfig(cfg)) //ldvet:allow ctxflow: deprecated pre-Session shim, kept bit-identical; use Session.Run(ctx)
}

// RunWith executes the GA over a caller-supplied evaluator — for
// example a NativeEngine whose Report the caller wants to inspect
// afterwards, or a custom decorated pipeline. The evaluator is not
// closed.
//
// Deprecated: use NewSession with WithEvaluator and Session.Run; the
// session form adds context cancellation and background Jobs over the
// same evaluator. RunWith is a thin shim over a single-run Session and
// produces bit-identical results.
func RunWith(ev Evaluator, numSNPs int, cfg GAConfig) (*GAResult, error) {
	if ev == nil {
		return nil, fmt.Errorf("%w: nil evaluator", ErrBadConfig)
	}
	s := &Session{numSNPs: numSNPs, stat: DefaultStatistic, eval: ev}
	return s.Run(context.Background(), WithGAConfig(cfg)) //ldvet:allow ctxflow: deprecated pre-Session shim, kept bit-identical; use Session.Run(ctx)
}
