// Package repro is a from-scratch Go reproduction of "A Parallel
// Adaptive GA for Linkage Disequilibrium in Genomics"
// (Vermeulen-Jourdan, Dhaenens, Talbi — IPDPS 2004).
//
// The library searches case/control SNP datasets for haplotypes
// (associations of 2–6 SNPs) that explain a disease status, scoring
// each candidate with the paper's EH-DIALL → CLUMP statistical
// pipeline and exploring the space with a multipopulation adaptive
// genetic algorithm evaluated through a synchronous master/slave
// worker pool.
//
// This package is the public facade: it re-exports the user-facing
// types of the internal packages and provides one-call entry points
// for the common workflows. The building blocks live in internal/
// (genotype model, synthetic population generator, linkage
// disequilibrium, EH-DIALL EM estimator, CLUMP statistics, fitness
// pipeline, the GA itself, master/slave evaluation, landscape
// analysis, baselines and the experiment harness).
//
// Quick start:
//
//	data, _ := repro.Paper51Dataset(1)
//	result, _ := repro.Run(data, repro.GAConfig{Seed: 1}, repro.RunOptions{})
//	for size, best := range result.BestBySize {
//	    fmt.Printf("size %d: %s\n", size, best)
//	}
package repro

import (
	"io"

	"repro/internal/clump"
	"repro/internal/core"
	"repro/internal/ehdiall"
	"repro/internal/fitness"
	"repro/internal/genotype"
	"repro/internal/master"
	"repro/internal/popgen"
)

// Re-exported data model types.
type (
	// Dataset is a case/control SNP study table.
	Dataset = genotype.Dataset
	// Individual is one study subject.
	Individual = genotype.Individual
	// SNP is one biallelic marker.
	SNP = genotype.SNP
	// Genotype is the per-SNP diploid genotype coding.
	Genotype = genotype.Genotype
	// Status is the affection status of an individual.
	Status = genotype.Status
)

// Affection statuses.
const (
	Affected   = genotype.Affected
	Unaffected = genotype.Unaffected
	Unknown    = genotype.Unknown
)

// Re-exported GA types.
type (
	// GAConfig holds the GA parameters (§5.2.1 defaults apply).
	GAConfig = core.Config
	// GAResult is a finished run's outcome.
	GAResult = core.Result
	// Haplotype is one GA individual (a SNP association).
	Haplotype = core.Haplotype
	// TraceEntry is a per-generation snapshot.
	TraceEntry = core.TraceEntry
)

// Statistic selects the CLUMP statistic used as fitness.
type Statistic = clump.Statistic

// The four CLUMP statistics (the paper's fitness is T1 by default).
const (
	T1 = clump.T1
	T2 = clump.T2
	T3 = clump.T3
	T4 = clump.T4
)

// Evaluator scores haplotypes; see NewEvaluator and
// NewParallelEvaluator.
type Evaluator = fitness.Evaluator

// GeneratorConfig configures the synthetic dataset generator that
// substitutes for the paper's proprietary Lille data.
type GeneratorConfig = popgen.Config

// DiseaseModel plants an epistatic risk haplotype in generated data.
type DiseaseModel = popgen.DiseaseModel

// Paper51Dataset generates the default 51-SNP study (53 affected, 53
// healthy, 70 unknown individuals) with the planted risk haplotype on
// SNPs 8, 12, 15, 21, 32 and 43 — the SNP numbers of the paper's best
// size-6 haplotype.
func Paper51Dataset(seed uint64) (*Dataset, error) {
	return popgen.Generate(popgen.Paper51(seed))
}

// Paper249Dataset generates the paper's larger 249-SNP study shape.
func Paper249Dataset(seed uint64) (*Dataset, error) {
	return popgen.Generate(popgen.Paper249(seed))
}

// GenerateDataset runs the synthetic generator with a custom
// configuration.
func GenerateDataset(cfg GeneratorConfig) (*Dataset, error) {
	return popgen.Generate(cfg)
}

// ReadDataset parses a dataset from its text table format.
func ReadDataset(r io.Reader) (*Dataset, error) { return genotype.Read(r) }

// ReadDatasetFile parses a dataset file.
func ReadDatasetFile(path string) (*Dataset, error) { return genotype.ReadFile(path) }

// WriteDataset serializes a dataset in the text table format.
func WriteDataset(w io.Writer, d *Dataset) error { return genotype.Write(w, d) }

// NewEvaluator builds the paper's Figure 3 evaluation pipeline
// (EH-DIALL per status group, concatenation, CLUMP statistic) over the
// dataset. The evaluator is safe for concurrent use.
func NewEvaluator(d *Dataset, stat Statistic) (Evaluator, error) {
	return fitness.NewPipeline(d, stat, ehdiall.Config{})
}

// ParallelEvaluator is a synchronous master/slave evaluator (§4.5).
// Close it when done.
type ParallelEvaluator interface {
	Evaluator
	// EvaluateBatch evaluates a whole generation with a synchronous
	// barrier; results are positional.
	EvaluateBatch(batch [][]int) ([]float64, []error)
	// Slaves returns the worker count.
	Slaves() int
	// Close stops the slaves.
	Close()
}

// NewParallelEvaluator wraps the Figure 3 pipeline in a master/slave
// pool with the given number of slaves (0 = one per CPU).
func NewParallelEvaluator(d *Dataset, stat Statistic, slaves int) (ParallelEvaluator, error) {
	pipe, err := fitness.NewPipeline(d, stat, ehdiall.Config{})
	if err != nil {
		return nil, err
	}
	return master.NewPool(pipe, slaves)
}

// RunOptions tunes the one-call Run entry point.
type RunOptions struct {
	// Statistic selects the fitness (default T1).
	Statistic Statistic
	// Slaves sizes the master/slave pool (0 = one per CPU).
	Slaves int
}

// Run executes the complete published method on a dataset: it builds
// the evaluation pipeline, starts the master/slave pool, runs the
// multipopulation adaptive GA and returns its per-size best
// haplotypes.
func Run(d *Dataset, cfg GAConfig, opts RunOptions) (*GAResult, error) {
	stat := opts.Statistic
	if stat == 0 {
		stat = T1
	}
	pool, err := NewParallelEvaluator(d, stat, opts.Slaves)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	ga, err := core.New(pool, d.NumSNPs(), cfg)
	if err != nil {
		return nil, err
	}
	return ga.Run()
}
