package main

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/serve"
)

// Latency classes the recorder aggregates client-side observations
// into. Reads and mutations get p99 SLO bounds; the SSE class measures
// time-to-first-event of a fresh subscription (the stream itself is
// open-ended, so its total duration is not a latency).
const (
	classRead = "read"
	classMut  = "mutate"
	classSSE  = "sse_first_event"
)

// callTimeout bounds every non-streaming request a fleet worker makes,
// so one wedged call cannot silently stall a worker for the whole
// soak.
const callTimeout = 15 * time.Second

// recorder aggregates client-observed latencies per class. Exact
// percentiles (sorted samples, not histogram estimates) are affordable
// here because the client keeps every observation in memory — unlike
// the server, whose /metrics histogram is fixed-size by design. The
// BENCH document carries both views.
type recorder struct {
	mu      sync.Mutex
	classes map[string]*classRec

	// dedupViolations counts preset uploads whose fingerprint id
	// changed for a previously seen seed — which must never happen.
	dedupViolations atomic.Int64
}

// classRec is one class's raw observations.
type classRec struct {
	samples []time.Duration
	errors  int64
}

func newRecorder() *recorder {
	return &recorder{classes: make(map[string]*classRec)}
}

// observe records one call outcome. Calls cut short by the soak
// deadline are discarded: they measure the window closing, not the
// server.
func (r *recorder) observe(ctx context.Context, class string, d time.Duration, err error) {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.classes[class]
	if c == nil {
		c = &classRec{}
		r.classes[class] = c
	}
	if err != nil {
		c.errors++
		return
	}
	c.samples = append(c.samples, d)
}

// ClassStats is the per-class aggregate written to BENCH_serve.json.
// Latencies are milliseconds (floats), exact over all samples.
type ClassStats struct {
	// Count is the number of successful calls measured.
	Count int `json:"count"`
	// Errors is the number of calls that returned an error (soak-
	// deadline cancellations excluded).
	Errors int64 `json:"errors"`
	// P50MS, P90MS, P99MS and MaxMS are exact quantiles of the
	// samples, in milliseconds.
	P50MS float64 `json:"p50_ms"`
	// P90MS is documented with P50MS above.
	P90MS float64 `json:"p90_ms"`
	// P99MS is documented with P50MS above.
	P99MS float64 `json:"p99_ms"`
	// MaxMS is documented with P50MS above.
	MaxMS float64 `json:"max_ms"`
}

// snapshot sorts each class's samples and derives its stats.
func (r *recorder) snapshot() map[string]ClassStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]ClassStats, len(r.classes))
	for name, c := range r.classes {
		sort.Slice(c.samples, func(i, j int) bool { return c.samples[i] < c.samples[j] })
		st := ClassStats{Count: len(c.samples), Errors: c.errors}
		if n := len(c.samples); n > 0 {
			st.P50MS = ms(c.samples[n*50/100])
			st.P90MS = ms(c.samples[n*90/100])
			st.P99MS = ms(c.samples[n*99/100])
			st.MaxMS = ms(c.samples[n-1])
		}
		out[name] = st
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// fleets is the split of -clients across the five workload shapes.
type fleets struct {
	pollers, sse, sessioners, uploaders, jobbers int
}

// splitFleets apportions n clients: 40% pollers (reads dominate real
// traffic), 20% SSE subscribers, 15% session churners, 15% uploaders,
// and the remainder job runners.
func splitFleets(n int) fleets {
	f := fleets{
		pollers:    n * 40 / 100,
		sse:        n * 20 / 100,
		sessioners: n * 15 / 100,
		uploaders:  n * 15 / 100,
	}
	f.jobbers = n - f.pollers - f.sse - f.sessioners - f.uploaders
	return f
}

// runFleet launches n workers of one shape, each tagged with its index.
func runFleet(ctx context.Context, wg *sync.WaitGroup, n int, worker func(ctx context.Context, id int)) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(ctx, id)
		}(i)
	}
}

// timed runs one client call under the per-call timeout and records it.
func timed(ctx context.Context, rec *recorder, class string, call func(context.Context) error) {
	cctx, cancel := context.WithTimeout(ctx, callTimeout)
	defer cancel()
	start := time.Now()
	err := call(cctx)
	rec.observe(ctx, class, time.Since(start), err)
}

// poller cycles through the read surface: job listings with cursor
// pagination, dataset and session listings, the metrics document, and
// the runtime counters.
func poller(ctx context.Context, client *serve.Client, rec *recorder, id int) {
	for i := id; ctx.Err() == nil; i++ {
		switch i % 5 {
		case 0:
			// Paginate the job listing a few pages deep: cursors over a
			// churning id space must stay valid.
			cursor := ""
			for page := 0; page < 3; page++ {
				var list serve.JobList
				timed(ctx, rec, classRead, func(c context.Context) error {
					var err error
					list, err = client.Jobs(c, serve.JobsQuery{Cursor: cursor, Limit: 5})
					return err
				})
				cursor = list.NextCursor
				if cursor == "" {
					break
				}
			}
		case 1:
			timed(ctx, rec, classRead, func(c context.Context) error {
				_, err := client.Datasets(c, "", 10)
				return err
			})
		case 2:
			timed(ctx, rec, classRead, func(c context.Context) error {
				_, err := client.Sessions(c, "", 10)
				return err
			})
		case 3:
			timed(ctx, rec, classRead, func(c context.Context) error {
				_, err := client.Metrics(c)
				return err
			})
		case 4:
			timed(ctx, rec, classRead, func(c context.Context) error {
				_, err := client.Runtime(c)
				return err
			})
		}
		sleepCtx(ctx, 50*time.Millisecond)
	}
}

// uploader exercises dataset upload dedup and churn: most uploads
// repeat a small set of preset seeds (same fingerprint, same id — the
// dedup path), every 20th uses a fresh seed (a brand-new dataset and
// store write). A seed whose id ever changes is a dedup violation.
func uploader(ctx context.Context, client *serve.Client, rec *recorder, id int) {
	seen := make(map[uint64]string)
	for i := 1; ctx.Err() == nil; i++ {
		seed := uint64(id%4 + 1)
		fresh := i%20 == 0
		if fresh {
			seed = uint64(1_000_000 + id*100_000 + i)
		}
		var ds serve.DatasetInfo
		var err error
		timed(ctx, rec, classMut, func(c context.Context) error {
			ds, err = client.CreateDataset(c, serve.DatasetRequest{
				Format: serve.FormatPreset, Preset: 51, Seed: seed,
			})
			return err
		})
		if err == nil && !fresh {
			if prev, ok := seen[seed]; ok && prev != ds.ID {
				rec.dedupViolations.Add(1)
			}
			seen[seed] = ds.ID
		}
		sleepCtx(ctx, 50*time.Millisecond)
	}
}

// sessioner churns sessions: create one on the shared dataset, read it
// back, fetch its engine stats, and abandon it to TTL eviction (the
// API has no session delete by design — idle eviction is the
// lifecycle).
func sessioner(ctx context.Context, client *serve.Client, rec *recorder, datasetID string) {
	for ctx.Err() == nil {
		var sess serve.SessionInfo
		var err error
		timed(ctx, rec, classMut, func(c context.Context) error {
			sess, err = client.CreateSession(c, serve.SessionRequest{DatasetID: datasetID})
			return err
		})
		if err == nil {
			timed(ctx, rec, classRead, func(c context.Context) error {
				_, err := client.Session(c, sess.ID)
				return err
			})
			timed(ctx, rec, classRead, func(c context.Context) error {
				_, err := client.Stats(c, sess.ID)
				return err
			})
		}
		sleepCtx(ctx, 50*time.Millisecond)
	}
}

// jobber owns one session and runs small GA jobs on it back to back:
// start, stream to completion, read the final document. Job starts are
// mutations; the post-completion fetch is a read.
func jobber(ctx context.Context, client *serve.Client, rec *recorder, id int, datasetID string) {
	sess, err := client.CreateSession(ctx, serve.SessionRequest{DatasetID: datasetID})
	if err != nil {
		rec.observe(ctx, classMut, 0, err)
		return
	}
	for i := 0; ctx.Err() == nil; i++ {
		var job serve.JobInfo
		timed(ctx, rec, classMut, func(c context.Context) error {
			var err error
			job, err = client.StartJob(c, sess.ID, serve.JobRequest{
				Config: smallConfig(uint64(id*10_000 + i + 1)),
			})
			return err
		})
		if job.ID == "" {
			sleepCtx(ctx, 100*time.Millisecond)
			continue
		}
		// The stream runs under the soak context directly: a job takes
		// well under a second, and the mass-DELETE cleans up any run
		// the deadline cuts short.
		if _, err := client.StreamEvents(ctx, job.ID, nil); err != nil {
			rec.observe(ctx, classSSE, 0, err)
			continue
		}
		timed(ctx, rec, classRead, func(c context.Context) error {
			_, err := client.Job(c, job.ID)
			return err
		})
		// Pace the GA load: back-to-back jobs with no gap would turn
		// the soak into a pure CPU benchmark of the evaluation pool.
		sleepCtx(ctx, 250*time.Millisecond)
	}
}

// errPlannedDisconnect is the reconnector's mid-stream drop: returned
// from the event callback, it aborts the stream like a client going
// away would.
var errPlannedDisconnect = errors.New("planned disconnect")

// sseSubscriber attaches to the long-running soak jobs. Even-numbered
// workers are deliberately slow consumers (5ms per event — the
// server's per-subscriber conflation must absorb them without stalling
// the GA or other subscribers); odd-numbered workers drop the stream
// after a few events and resubscribe, the mid-stream reconnect
// pattern. Both record time-to-first-event per subscription; the
// late-subscriber seed makes that the subscribe round-trip, not a
// generation wait.
func sseSubscriber(ctx context.Context, client *serve.Client, rec *recorder, id int, soakJobs []string) {
	jobID := soakJobs[id%len(soakJobs)]
	slow := id%2 == 0
	for ctx.Err() == nil {
		// The safety timeout only trips when the server serves no
		// events at all for a long stretch — that is a real failure,
		// not a planned disconnect.
		sctx, cancel := context.WithTimeout(ctx, 20*time.Second)
		start := time.Now()
		first := false
		events := 0
		_, err := client.StreamEvents(sctx, jobID, func(ev serve.Event) error {
			if !first {
				first = true
				rec.observe(ctx, classSSE, time.Since(start), nil)
			}
			events++
			if slow {
				sleepCtx(sctx, 5*time.Millisecond)
				return nil
			}
			if events >= 3 {
				return errPlannedDisconnect
			}
			return nil
		})
		cancel()
		switch {
		case errors.Is(err, errPlannedDisconnect) || ctx.Err() != nil:
			// A planned drop, or the soak window closed.
		case !first:
			rec.observe(ctx, classSSE, 0, errors.New("stream ended before any event"))
		case err != nil:
			rec.observe(ctx, classSSE, 0, err)
		}
	}
}

// sampler polls GET /debug/runtime through the soak and keeps the
// peaks; the final reading comes from the settle loop in main.
type sampler struct {
	mu            sync.Mutex
	maxGoroutines int
	maxHeap       uint64
	samples       int
}

func newSampler(baseline serve.RuntimeInfo) *sampler {
	return &sampler{maxGoroutines: baseline.Goroutines, maxHeap: baseline.HeapAllocBytes}
}

func (s *sampler) run(ctx context.Context, client *serve.Client) {
	for ctx.Err() == nil {
		ri, err := client.Runtime(ctx)
		if err == nil {
			s.mu.Lock()
			s.samples++
			if ri.Goroutines > s.maxGoroutines {
				s.maxGoroutines = ri.Goroutines
			}
			if ri.HeapAllocBytes > s.maxHeap {
				s.maxHeap = ri.HeapAllocBytes
			}
			s.mu.Unlock()
		}
		sleepCtx(ctx, 250*time.Millisecond)
	}
}

// peaks returns the observed maxima and the sample count.
func (s *sampler) peaks() (goroutines int, heap uint64, samples int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxGoroutines, s.maxHeap, s.samples
}

// sleepCtx sleeps d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// engineConfig is the GA configuration of the engine benchmark phase:
// big enough that a run performs thousands of evaluations, small
// enough that -engine-runs of them finish in seconds.
func engineConfig(seed uint64) repro.GAConfig {
	return repro.GAConfig{
		MinSize: 2, MaxSize: 4, PopulationSize: 40,
		PairsPerGeneration: 12, StagnationLimit: 20,
		ImmigrantStagnation: 8, MaxGenerations: 400, Seed: seed,
	}
}
