// Command loadcheck is the load/soak harness of the serving layer and
// the keeper of the repository's perf trajectory. It boots a real
// ldserve process, hammers it with configurable fleets of concurrent
// clients — dataset uploads with dedup churn, session create/abandon
// cycles, background GA jobs, SSE subscribers (including deliberately
// slow consumers and mid-stream reconnects), and list/paginate/metrics
// pollers — while sampling per-endpoint latency and the server's
// goroutine/heap counters through GET /debug/runtime. When the soak
// window closes it asserts the service-level objectives:
//
//   - p99 latency bounds per endpoint class (reads, mutations, and
//     time-to-first-SSE-event), scaled by -relax for loaded CI boxes,
//   - zero client-visible request errors,
//   - zero running jobs after the mass-DELETE drain (no job leaks),
//   - goroutine count settled back to the post-warmup baseline (no
//     goroutine leaks from streams, jobs, or evaluation backends),
//   - dataset upload dedup stayed consistent under churn (the same
//     preset+seed always answered the same fingerprint id).
//
// It then runs the in-process engine benchmark (GA runs through the
// repro facade on the paper's 51-SNP study — the BenchmarkBackendGA
// workload, distilled) and writes two machine-readable snapshots:
//
//	BENCH_serve.json   client latency classes, the server's /metrics
//	                   document (fixed-bound histogram included),
//	                   goroutine/heap series, and the SLO verdicts
//	BENCH_engine.json  evals/sec, cache hit-rate and coalescing rate
//
// Committed over time these files are the perf trajectory: because the
// histogram bucket bounds are fixed, two snapshots taken weeks apart
// can be diffed bucket by bucket. CI runs a scaled-down profile
// (fewer clients, shorter soak, relaxed SLOs) and uploads both files
// as artifacts; see docs/API.md ("Performance trajectory").
//
// Usage:
//
//	go run ./tools/loadcheck                      # full profile, repo root
//	go run ./tools/loadcheck -ldserve bin/ldserve # reuse a built binary
//	go run ./tools/loadcheck -clients 48 -duration 8s -relax 4 -out .
//
// Any SLO violation exits nonzero with a diagnostic; the BENCH files
// are written either way (a failing snapshot is still a data point).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/serve"
)

func main() {
	var (
		bin        = flag.String("ldserve", "", "path to the ldserve binary (default: build it into a temp dir)")
		clients    = flag.Int("clients", 200, "total concurrent clients across all fleets")
		duration   = flag.Duration("duration", 15*time.Second, "soak window length")
		out        = flag.String("out", ".", "directory the BENCH_*.json files are written to")
		relax      = flag.Float64("relax", 1, "multiplier on the latency SLO bounds (loaded CI boxes need headroom)")
		engineRuns = flag.Int("engine-runs", 4, "sequential GA runs in the engine benchmark phase")
		shardSNPs  = flag.Int("shard-snps", 12000, "SNP count of the sharded kill-and-restart scenario's study; 0 skips the scenario")
		rateRPS    = flag.Float64("rate", 25, "requests/second of the rate-limit scenario's server; 0 skips the scenario")
		rateBurst  = flag.Int("rate-burst", 30, "burst size of the rate-limit scenario's server")
		raceBench  = flag.Bool("race-bench", true, "run the racing benchmark phase (4 lanes racing vs the same 4 sequentially)")
		apiKey     = flag.String("api-key", "loadcheck-secret", "API key to run the server with")
	)
	flag.Parse()
	if *clients < 8 {
		fatalf("-clients %d too small: the fleets need at least 8", *clients)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("out dir: %v", err)
	}

	binPath := ensureBinary(*bin)
	dataDir, err := os.MkdirTemp("", "loadcheck-*")
	if err != nil {
		fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(dataDir)

	addr := freeAddr()
	proc := startServer(binPath, addr, dataDir, *apiKey)
	defer stopServer(proc)

	// One pooled transport for every fleet worker: without a widened
	// idle pool, hundreds of concurrent clients would thrash TCP
	// connections and measure the dialer instead of the server.
	transport := &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
		IdleConnTimeout:     90 * time.Second,
	}
	client := serve.NewClient("http://"+addr, &http.Client{Transport: transport}, serve.WithAPIKey(*apiKey))
	ctx := context.Background()

	// Warmup: one dataset, one session, one completed job. This pulls
	// the shared evaluation backend, the job pump and the HTTP plumbing
	// into existence before the goroutine baseline is taken, so the
	// leak SLO measures growth, not lazy initialization.
	ds, err := client.CreateDataset(ctx, serve.DatasetRequest{Format: serve.FormatPreset, Preset: 51, Seed: 1})
	if err != nil {
		fatalf("warmup upload: %v", err)
	}
	sess, err := client.CreateSession(ctx, serve.SessionRequest{DatasetID: ds.ID})
	if err != nil {
		fatalf("warmup session: %v", err)
	}
	job, err := client.StartJob(ctx, sess.ID, serve.JobRequest{Config: smallConfig(1)})
	if err != nil {
		fatalf("warmup job: %v", err)
	}
	if final, err := client.StreamEvents(ctx, job.ID, nil); err != nil || final == nil || final.State != serve.JobDone {
		fatalf("warmup job did not finish: %+v, %v", final, err)
	}
	baseline, err := client.Runtime(ctx)
	if err != nil {
		fatalf("warmup runtime read: %v", err)
	}
	fmt.Printf("loadcheck: warmed up — dataset %s, baseline %d goroutines, %d MiB heap\n",
		ds.ID, baseline.Goroutines, baseline.HeapAllocBytes>>20)

	// Soak jobs: long-running GA jobs (one on the island engine) that
	// the SSE fleet subscribes to. They stop only at the mass-DELETE.
	soakSess, err := client.CreateSession(ctx, serve.SessionRequest{DatasetID: ds.ID})
	if err != nil {
		fatalf("soak session: %v", err)
	}
	var soakJobs []string
	for i := 0; i < 3; i++ {
		req := serve.JobRequest{Config: soakConfig(uint64(100 + i))}
		if i == 2 {
			req.Islands = 2
		}
		j, err := client.StartJob(ctx, soakSess.ID, req)
		if err != nil {
			fatalf("soak job %d: %v", i, err)
		}
		soakJobs = append(soakJobs, j.ID)
	}

	// The soak window: every fleet loops until the deadline.
	rec := newRecorder()
	fleetCtx, cancelFleet := context.WithTimeout(ctx, *duration)
	defer cancelFleet()
	sampler := newSampler(baseline)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); sampler.run(fleetCtx, client) }()

	f := splitFleets(*clients)
	fmt.Printf("loadcheck: soaking %s with %d clients (%d pollers, %d sse, %d sessioners, %d uploaders, %d jobbers)\n",
		*duration, *clients, f.pollers, f.sse, f.sessioners, f.uploaders, f.jobbers)
	runFleet(fleetCtx, &wg, f.pollers, func(ctx context.Context, id int) { poller(ctx, client, rec, id) })
	runFleet(fleetCtx, &wg, f.sse, func(ctx context.Context, id int) { sseSubscriber(ctx, client, rec, id, soakJobs) })
	runFleet(fleetCtx, &wg, f.sessioners, func(ctx context.Context, id int) { sessioner(ctx, client, rec, ds.ID) })
	runFleet(fleetCtx, &wg, f.uploaders, func(ctx context.Context, id int) { uploader(ctx, client, rec, id) })
	runFleet(fleetCtx, &wg, f.jobbers, func(ctx context.Context, id int) { jobber(ctx, client, rec, id, ds.ID) })
	wg.Wait()
	cancelFleet()

	// Drain: mass-DELETE every running job, then verify none leaked.
	deleted, leakedJobs := drainJobs(ctx, client)
	fmt.Printf("loadcheck: drained — %d jobs cancelled, %d still running\n", deleted, leakedJobs)

	// Close the pooled keep-alive connections: Go's HTTP server runs
	// one goroutine per open connection, and the leak SLO is about the
	// server's own plumbing, not the harness's idle sockets.
	transport.CloseIdleConnections()

	// Goroutine settle: the server must wind back to the baseline.
	finalRT, settled := settleRuntime(ctx, client, baseline.Goroutines+goroutineSlack)
	fmt.Printf("loadcheck: runtime settled=%v — %d goroutines (baseline %d), %d MiB heap\n",
		settled, finalRT.Goroutines, baseline.Goroutines, finalRT.HeapAllocBytes>>20)

	metrics, err := client.Metrics(ctx)
	if err != nil {
		fatalf("final metrics read: %v", err)
	}
	stopServer(proc)

	// The sharded kill-and-restart drill gets its own server pair (and
	// its own directories): a SIGKILL mid-sweep must resume, not
	// interrupt, on the next boot.
	if *shardSNPs > 0 {
		runShardScenario(binPath, *apiKey, *shardSNPs)
	}

	// The rate-limit scenario gets its own server too: mixing a
	// throttled profile into the soak would turn every fleet's error
	// count into noise.
	var rateDoc *RateLimitBench
	if *rateRPS > 0 {
		rd := runRateScenario(binPath, *apiKey, *rateRPS, *rateBurst)
		rateDoc = &rd
	}

	// The engine benchmark runs after the server is gone, so the two
	// phases never compete for cores.
	engine, err := runEngineBench(*engineRuns)
	if err != nil {
		fatalf("engine bench: %v", err)
	}
	if k := engine.Kernel; k != nil {
		fmt.Printf("loadcheck: kernel — 249-SNP count sweep %.2fx packed over byte (%dns vs %dns), pipeline %.2fx\n",
			k.CountSpeedup, k.CountPackedNS, k.CountByteNS, k.PipelineSpeedup)
	}
	if *raceBench {
		race, err := runRaceBench()
		if err != nil {
			fatalf("race bench: %v", err)
		}
		engine.Race = &race
		fmt.Printf("loadcheck: race — 4 lanes computed %d evals raced vs %d sequential (%.1f%% saved), %d shared hits\n",
			race.RacedComputed, race.SequentialComputed, 100*race.SavedFraction, race.SharedHits)
	}

	doc := buildServeBench(*clients, *duration, *relax, rec, metrics, sampler, baseline, finalRT, leakedJobs, rateDoc)
	fmt.Printf("loadcheck: latency SLO bounds scaled ×%.1f (relax %.1f × cpu scale %.1f on %d CPUs)\n",
		doc.Profile.Relax*doc.Profile.CPUScale, doc.Profile.Relax, doc.Profile.CPUScale, runtime.NumCPU())
	writeJSON(filepath.Join(*out, "BENCH_serve.json"), doc)
	writeJSON(filepath.Join(*out, "BENCH_engine.json"), engine)
	fmt.Printf("loadcheck: wrote %s and %s\n",
		filepath.Join(*out, "BENCH_serve.json"), filepath.Join(*out, "BENCH_engine.json"))
	fmt.Printf("loadcheck: engine — %.0f requested evals/s, %.0f computed evals/s, hit rate %.2f, coalesce rate %.3f\n",
		engine.RequestedPerSec, engine.ComputedPerSec, engine.HitRate, engine.CoalesceRate)

	ok := true
	for _, c := range doc.SLO.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict, ok = "FAIL", false
		}
		fmt.Printf("loadcheck: SLO %-28s %s  (%.2f %s, limit %.2f)\n", c.Name, verdict, c.Actual, c.Unit, c.Limit)
	}
	if !ok {
		fatalf("SLO violations (see above)")
	}
	fmt.Println("loadcheck: OK — all SLOs met")
}

// goroutineSlack is the tolerated goroutine growth between the
// post-warmup baseline and the post-drain settle. It absorbs runtime
// internals (GC workers, netpoller threads) that come and go; a real
// leak — one SSE handler or job pump per request — blows past it
// immediately at load-test request counts.
const goroutineSlack = 16

// smallConfig is a GA configuration that finishes in well under a
// second on the 51-SNP preset — the jobber fleet's workload.
func smallConfig(seed uint64) repro.GAConfig {
	return repro.GAConfig{
		MinSize: 2, MaxSize: 3, PopulationSize: 24,
		PairsPerGeneration: 8, StagnationLimit: 12,
		ImmigrantStagnation: 5, MaxGenerations: 200, Seed: seed,
	}
}

// soakConfig never converges on its own: stagnation and generation
// caps are effectively infinite, so the job streams generations until
// the mass-DELETE stops it.
func soakConfig(seed uint64) repro.GAConfig {
	return repro.GAConfig{
		MinSize: 2, MaxSize: 3, PopulationSize: 24,
		PairsPerGeneration: 8, StagnationLimit: 1 << 30,
		ImmigrantStagnation: 5, MaxGenerations: 1 << 30, Seed: seed,
	}
}

// drainJobs pages through the full job listing, cancels every running
// job, and reports how many stayed "running" after a generous settle —
// the job-leak SLO input.
func drainJobs(ctx context.Context, client *serve.Client) (deleted, leaked int) {
	cursor := ""
	for {
		list, err := client.Jobs(ctx, serve.JobsQuery{Cursor: cursor, Limit: 100})
		if err != nil {
			fatalf("drain listing: %v", err)
		}
		for _, ji := range list.Jobs {
			if ji.State != serve.JobRunning {
				continue
			}
			if _, err := client.StopJob(ctx, ji.ID); err == nil {
				deleted++
			}
		}
		cursor = list.NextCursor
		if cursor == "" {
			break
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		leaked = countRunning(ctx, client)
		if leaked == 0 || time.Now().After(deadline) {
			return deleted, leaked
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// countRunning counts jobs the listing still reports as running.
func countRunning(ctx context.Context, client *serve.Client) int {
	n, cursor := 0, ""
	for {
		list, err := client.Jobs(ctx, serve.JobsQuery{Cursor: cursor, Limit: 100})
		if err != nil {
			fatalf("leak listing: %v", err)
		}
		for _, ji := range list.Jobs {
			if ji.State == serve.JobRunning {
				n++
			}
		}
		cursor = list.NextCursor
		if cursor == "" {
			return n
		}
	}
}

// settleRuntime polls GET /debug/runtime until the goroutine count
// drops to the limit or the deadline expires; the last reading and the
// verdict feed the leak SLO.
func settleRuntime(ctx context.Context, client *serve.Client, limit int) (serve.RuntimeInfo, bool) {
	deadline := time.Now().Add(20 * time.Second)
	for {
		ri, err := client.Runtime(ctx)
		if err != nil {
			fatalf("runtime read: %v", err)
		}
		if ri.Goroutines <= limit {
			return ri, true
		}
		if time.Now().After(deadline) {
			return ri, false
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// ensureBinary returns the path of a runnable ldserve, building one
// into a temp dir when the caller did not supply -ldserve.
func ensureBinary(path string) string {
	if path != "" {
		abs, err := filepath.Abs(path)
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := os.Stat(abs); err != nil {
			fatalf("ldserve binary: %v", err)
		}
		return abs
	}
	dir, err := os.MkdirTemp("", "loadcheck-bin-*")
	if err != nil {
		fatalf("temp bin dir: %v", err)
	}
	out := filepath.Join(dir, "ldserve")
	cmd := exec.Command("go", "build", "-o", out, "./cmd/ldserve")
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Run(); err != nil {
		fatalf("build ldserve: %v", err)
	}
	return out
}

// freeAddr reserves a loopback port for the server.
func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startServer boots ldserve with the loadcheck profile — durable
// store, auth, metrics, /debug/runtime, a short session TTL with a
// fast janitor (the sessioner fleet relies on TTL eviction), quiet
// logging — and waits for the listener.
func startServer(bin, addr, dataDir, apiKey string, extra ...string) *exec.Cmd {
	args := []string{
		"-addr", addr,
		"-data-dir", dataDir,
		"-api-key", apiKey,
		"-metrics",
		"-debug-runtime",
		"-quiet",
		"-session-ttl", "5s",
		"-sweep", "1s",
		"-max-jobs", "8",
		"-drain", "2s",
		"-shutdown-timeout", "10s",
	}
	cmd := exec.Command(bin, append(args, extra...)...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("start %s: %v", bin, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	fatalf("server on %s never came up", addr)
	return nil
}

// stopServer sends SIGTERM (the graceful drain path) and waits.
func stopServer(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		<-done
		fatalf("server ignored SIGTERM for 60s")
	}
	cmd.Process = nil
}

// writeJSON writes one BENCH document, indented, with a trailing
// newline so the files diff cleanly in version control.
func writeJSON(path string, doc any) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("marshal %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadcheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// goVersion is the toolchain stamp both BENCH documents carry, so a
// perf step change can be attributed to a Go upgrade.
func goVersion() string { return runtime.Version() }
