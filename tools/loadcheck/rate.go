package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"
)

// RateLimitBench is the BENCH_serve.json block recording the
// rate-limit scenario: a second ldserve booted with -rate/-burst and
// hammered past its budget must answer the overflow with measured
// HTTP 429s, every one carrying a usable Retry-After, and must accept
// a request again once the advertised wait has passed.
type RateLimitBench struct {
	// RPS and Burst are the server's token-bucket parameters.
	RPS float64 `json:"rps"`
	// Burst is documented with RPS above.
	Burst int `json:"burst"`
	// Requests is how many probes the scenario fired.
	Requests int `json:"requests"`
	// Limited counts the 429 responses among them.
	Limited int `json:"limited"`
	// RetryAfterMissing counts 429s whose Retry-After header was
	// absent or unparseable — the SLO requires zero.
	RetryAfterMissing int `json:"retry_after_missing"`
	// MaxRetryAfterSec is the largest advertised wait, in seconds.
	MaxRetryAfterSec int `json:"max_retry_after_sec"`
	// RecoveredAfterWait reports whether a request succeeded after
	// honoring the advertised wait.
	RecoveredAfterWait bool `json:"recovered_after_wait"`
}

// runRateScenario boots a rate-limited ldserve profile on its own
// directories, fires sequential probes fast enough to drain the burst
// bucket, and measures the overflow behavior. The verdicts land in
// BENCH_serve.json as SLO checks; a server that never limits, omits
// Retry-After, or stays limited after the advertised wait fails here
// directly.
func runRateScenario(bin, apiKey string, rps float64, burst int) RateLimitBench {
	dataDir, err := os.MkdirTemp("", "loadcheck-rate-*")
	if err != nil {
		fatalf("rate scenario temp dir: %v", err)
	}
	defer os.RemoveAll(dataDir)

	addr := freeAddr()
	proc := startServer(bin, addr, dataDir, apiKey,
		"-rate", fmt.Sprintf("%g", rps), "-burst", strconv.Itoa(burst))
	defer stopServer(proc)

	doc := RateLimitBench{RPS: rps, Burst: burst}
	httpc := &http.Client{Timeout: 10 * time.Second}
	probe := func() (status int, retryAfter string) {
		req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/v1/datasets", nil)
		if err != nil {
			fatalf("rate probe: %v", err)
		}
		req.Header.Set("Authorization", "Bearer "+apiKey)
		resp, err := httpc.Do(req)
		if err != nil {
			fatalf("rate probe: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	// Back-to-back probes arrive far above any sane -rate, so the
	// bucket drains after ~burst requests and everything past it must
	// be a 429 with Retry-After.
	total := burst + 50
	for i := 0; i < total; i++ {
		status, retryAfter := probe()
		doc.Requests++
		switch status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			doc.Limited++
			sec, err := strconv.Atoi(retryAfter)
			if err != nil || sec < 1 {
				doc.RetryAfterMissing++
			} else if sec > doc.MaxRetryAfterSec {
				doc.MaxRetryAfterSec = sec
			}
		default:
			fatalf("rate probe %d: unexpected HTTP %d", i, status)
		}
	}
	if doc.Limited == 0 {
		fatalf("rate scenario: %d probes against rps=%g burst=%d never saw a 429", total, rps, burst)
	}
	if doc.RetryAfterMissing > 0 {
		fatalf("rate scenario: %d of %d 429s lacked a usable Retry-After", doc.RetryAfterMissing, doc.Limited)
	}

	// Honoring the advertised wait must buy the next request through.
	time.Sleep(time.Duration(doc.MaxRetryAfterSec)*time.Second + 200*time.Millisecond)
	status, _ := probe()
	doc.Requests++
	doc.RecoveredAfterWait = status == http.StatusOK
	if !doc.RecoveredAfterWait {
		fatalf("rate scenario: HTTP %d after waiting the advertised %ds", status, doc.MaxRetryAfterSec)
	}
	fmt.Printf("loadcheck: rate scenario — %d/%d probes limited (rps=%g burst=%d), max Retry-After %ds, recovered\n",
		doc.Limited, doc.Requests, rps, burst, doc.MaxRetryAfterSec)
	return doc
}
