package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro"
	"repro/serve"
)

// wideStudy generates the sharding workload: a study wide enough that
// a sweep over it takes long enough to be killed mid-run, uploaded as
// a multi-megabyte table (the "large upload" path).
func wideStudy(numSNPs int) (*repro.Dataset, string) {
	third := numSNPs / 3
	d, err := repro.GenerateDataset(repro.GeneratorConfig{
		NumSNPs: numSNPs, NumAffected: 60, NumUnaffected: 60, NumUnknown: 30,
		MissingRate:       0.01,
		RiskHaplotypeFreq: 0.3,
		Disease: repro.DiseaseModel{
			CausalSites: []int{third, 2 * third}, RiskAlleles: []uint8{1, 1},
			BaseRisk: 0.15, HaplotypeEffect: 0.6,
		},
		Seed: 4242,
	})
	if err != nil {
		fatalf("generate wide study: %v", err)
	}
	var buf bytes.Buffer
	if err := repro.WriteDataset(&buf, d); err != nil {
		fatalf("serialize wide study: %v", err)
	}
	return d, buf.String()
}

// runShardScenario is the kill-and-restart acceptance drill for
// sharded sweeps: boot a durable, spill-backed ldserve, upload a wide
// study, start a checkpointed sweep job on a sharded session, SIGKILL
// the server mid-sweep (no drain, no final persist — the record stays
// "running"), restart over the same directories, and require that the
// job resumes from its checkpoint: same id, shards restored instead of
// recomputed, strictly fewer windows evaluated in life 2, and a final
// best window. Any violation exits nonzero.
func runShardScenario(bin, apiKey string, numSNPs int) {
	dataDir, err := os.MkdirTemp("", "loadcheck-shard-*")
	if err != nil {
		fatalf("shard scenario temp dir: %v", err)
	}
	defer os.RemoveAll(dataDir)
	spillDir := filepath.Join(dataDir, "spill")
	ctx := context.Background()

	addr := freeAddr()
	proc := startServer(bin, addr, filepath.Join(dataDir, "records"), apiKey, "-spill-dir", spillDir)
	client := serve.NewClient("http://"+addr, http.DefaultClient, serve.WithAPIKey(apiKey))

	_, table := wideStudy(numSNPs)
	ds, err := client.CreateDataset(ctx, serve.DatasetRequest{Format: serve.FormatTable, Content: table})
	if err != nil {
		fatalf("shard scenario upload: %v", err)
	}
	sess, err := client.CreateSession(ctx, serve.SessionRequest{DatasetID: ds.ID, ShardSize: 128})
	if err != nil {
		fatalf("shard scenario session: %v", err)
	}
	job, err := client.StartJob(ctx, sess.ID, serve.JobRequest{Sweep: &serve.SweepSpec{Size: 4}})
	if err != nil {
		fatalf("shard scenario sweep start: %v", err)
	}
	fmt.Printf("loadcheck: shard scenario — %d-SNP upload (%d KiB), sweep %s on session %s\n",
		numSNPs, len(table)>>10, job.ID, sess.ID)

	// Wait for at least two checkpointed shards, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	var killed serve.JobInfo
	for {
		ji, err := client.Job(ctx, job.ID)
		if err != nil {
			fatalf("shard scenario poll: %v", err)
		}
		if ji.State != serve.JobRunning {
			fatalf("sweep finished before the kill (state %s) — raise -shard-snps", ji.State)
		}
		if ji.Shards != nil && ji.Shards.Done >= 2 {
			killed = ji
			break
		}
		if time.Now().After(deadline) {
			fatalf("sweep made no progress before the kill deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	proc.Process.Signal(syscall.SIGKILL)
	proc.Wait()
	proc.Process = nil
	fmt.Printf("loadcheck: shard scenario — SIGKILL after %d/%d shards\n",
		killed.Shards.Done, killed.Shards.Total)

	// The spill directory must hold the write-once shard files the
	// restarted backend will reuse.
	spilled, err := filepath.Glob(filepath.Join(spillDir, "ds-*", "shard-*.bin"))
	if err != nil || len(spilled) == 0 {
		fatalf("no spilled shard files under %s (err %v)", spillDir, err)
	}

	// Life 2: same directories, fresh port. Restore must relaunch the
	// job under its original id.
	addr2 := freeAddr()
	proc2 := startServer(bin, addr2, filepath.Join(dataDir, "records"), apiKey, "-spill-dir", spillDir)
	defer stopServer(proc2)
	client2 := serve.NewClient("http://"+addr2, http.DefaultClient, serve.WithAPIKey(apiKey))

	deadline = time.Now().Add(120 * time.Second)
	var final serve.JobInfo
	for {
		ji, err := client2.Job(ctx, job.ID)
		if err != nil {
			fatalf("shard scenario life-2 poll: %v", err)
		}
		if ji.State != serve.JobRunning {
			final = ji
			break
		}
		if time.Now().After(deadline) {
			fatalf("resumed sweep never finished")
		}
		time.Sleep(50 * time.Millisecond)
	}
	sw := final.Sweep
	switch {
	case final.State != serve.JobDone || sw == nil:
		fatalf("resumed sweep = state %s, sweep %v; want done with an outcome", final.State, sw)
	case sw.Resumed < 2:
		fatalf("life 2 resumed %d shards, want >= 2 (the kill happened after %d)", sw.Resumed, killed.Shards.Done)
	case sw.Done != sw.Shards:
		fatalf("resumed sweep completed %d of %d shards", sw.Done, sw.Shards)
	case sw.Evaluated >= int64(sw.TotalWindows):
		fatalf("life 2 evaluated %d of %d windows — the checkpoint bought nothing", sw.Evaluated, sw.TotalWindows)
	case len(sw.Best.Best) == 0:
		fatalf("resumed sweep found no best window: %+v", sw)
	}
	fmt.Printf("loadcheck: shard scenario OK — resumed %d shards, evaluated %d of %d windows in life 2, best %v (fitness %.3f)\n",
		sw.Resumed, sw.Evaluated, sw.TotalWindows, sw.Best.Best, sw.Best.Fitness)
}

// ShardedBench pins sharded-vs-monolithic evaluation throughput: the
// same batch of windows scored through the monolithic native backend,
// an in-memory sharded engine, and a spill-backed sharded engine (all
// cold caches, per-CPU workers). The ratio is the cost of gathering
// columns shard by shard instead of slicing one resident table — the
// price paid for datasets too wide to keep resident.
type ShardedBench struct {
	// NumSNPs and Rows describe the synthetic study.
	NumSNPs int `json:"num_snps"`
	// Rows is documented with NumSNPs above.
	Rows int `json:"rows"`
	// ShardSize is the columns-per-shard of the sharded engines.
	ShardSize int `json:"shard_size"`
	// Windows is the batch size (width-2 windows, stride 3).
	Windows int `json:"windows"`
	// MonolithicNS / MonolithicEvalsPerSec time the resident backend.
	MonolithicNS int64 `json:"monolithic_ns"`
	// MonolithicEvalsPerSec is documented with MonolithicNS above.
	MonolithicEvalsPerSec float64 `json:"monolithic_evals_per_sec"`
	// ShardedNS / ShardedEvalsPerSec time the in-memory sharded engine.
	ShardedNS int64 `json:"sharded_ns"`
	// ShardedEvalsPerSec is documented with ShardedNS above.
	ShardedEvalsPerSec float64 `json:"sharded_evals_per_sec"`
	// SpillNS / SpillEvalsPerSec time the spill-backed engine (shard
	// files written once, then loaded through the LRU on demand).
	SpillNS int64 `json:"spill_ns"`
	// SpillEvalsPerSec is documented with SpillNS above.
	SpillEvalsPerSec float64 `json:"spill_evals_per_sec"`
	// ShardedVsMonolithic is sharded throughput over monolithic
	// throughput (1.0 = free sharding).
	ShardedVsMonolithic float64 `json:"sharded_vs_monolithic"`
}

// runShardedBench measures the three engines on one cold batch each.
// The BenchmarkShardedEval bench in the repo root is the iterated
// (go test -bench) twin of this snapshot.
func runShardedBench() (ShardedBench, error) {
	const (
		numSNPs   = 3000
		shardSize = 256
	)
	d, _ := wideStudy(numSNPs)
	var windows [][]int
	for s := 0; s+2 <= d.NumSNPs(); s += 3 {
		windows = append(windows, []int{s, s + 1})
	}
	doc := ShardedBench{
		NumSNPs: d.NumSNPs(), Rows: d.NumIndividuals(),
		ShardSize: shardSize, Windows: len(windows),
	}

	timeBatch := func(ev repro.ParallelEvaluator) (int64, float64, error) {
		defer ev.Close()
		t0 := time.Now()
		_, errs := ev.EvaluateBatch(windows)
		for _, err := range errs {
			if err != nil {
				return 0, 0, err
			}
		}
		wall := time.Since(t0)
		return wall.Nanoseconds(), float64(len(windows)) / wall.Seconds(), nil
	}

	mono, err := repro.NewBackend(d, repro.T1, repro.BackendNative, 0)
	if err != nil {
		return doc, err
	}
	if doc.MonolithicNS, doc.MonolithicEvalsPerSec, err = timeBatch(mono); err != nil {
		return doc, err
	}

	mem, err := repro.NewShardedEngine(d, repro.T1, shardSize, "", 0)
	if err != nil {
		return doc, err
	}
	if doc.ShardedNS, doc.ShardedEvalsPerSec, err = timeBatch(mem); err != nil {
		return doc, err
	}

	spillDir, err := os.MkdirTemp("", "loadcheck-spill-*")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(spillDir)
	spill, err := repro.NewShardedEngine(d, repro.T1, shardSize, spillDir, 0)
	if err != nil {
		return doc, err
	}
	if doc.SpillNS, doc.SpillEvalsPerSec, err = timeBatch(spill); err != nil {
		return doc, err
	}

	if doc.MonolithicEvalsPerSec > 0 {
		doc.ShardedVsMonolithic = doc.ShardedEvalsPerSec / doc.MonolithicEvalsPerSec
	}
	runtime.GC() // the wide study is garbage now; don't bill it to the caller
	return doc, nil
}
