package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/ehdiall"
	"repro/internal/fitness"
	"repro/internal/genotype"
	"repro/internal/rng"
)

// KernelBench is the counting-kernel phase of BENCH_engine.json:
// packed 2-bit popcount kernel versus the byte-per-genotype reference
// on the paper's 249-SNP preset, committed so the speedup claim is a
// diffable trajectory rather than an anecdote. Count is the kernel
// itself — the per-SNP genotype-class sweep feeding allele frequencies
// and the HWE QC filter, where the word-parallel representation pays;
// Pipeline is the honest end-to-end fitness evaluation, whose shared
// EM core is identical on both kernels by the bit-identity contract,
// so its ratio stays close to 1. BenchmarkPackedKernel in the repo
// root is the iterated (go test -bench) twin of this snapshot.
type KernelBench struct {
	// NumSNPs and Rows describe the study (the 249-SNP preset).
	NumSNPs int `json:"num_snps"`
	// Rows is documented with NumSNPs above.
	Rows int `json:"rows"`
	// CountPackedNS / CountByteNS time one full QC sweep (allele
	// frequencies + HWE test for every SNP) per kernel.
	CountPackedNS int64 `json:"count_packed_ns"`
	// CountByteNS is documented with CountPackedNS above.
	CountByteNS int64 `json:"count_byte_ns"`
	// CountSpeedup is byte over packed sweep time — the acceptance
	// ratio, gated at >= 2.
	CountSpeedup float64 `json:"count_speedup"`
	// PipelinePackedNS / PipelineByteNS time one full fitness
	// evaluation (EH-DIALL -> CLUMP T1, size-5 site sets) per kernel
	// through the allocation-free scratch path.
	PipelinePackedNS int64 `json:"pipeline_packed_ns"`
	// PipelineByteNS is documented with PipelinePackedNS above.
	PipelineByteNS int64 `json:"pipeline_byte_ns"`
	// PipelineSpeedup is byte over packed evaluation time.
	PipelineSpeedup float64 `json:"pipeline_speedup"`
}

// runKernelBench measures both stages on both kernels and fails when
// the packed counting sweep pays less than 2x over the byte reference
// — that regression would mean the popcount kernel stopped earning the
// dual-path maintenance cost.
func runKernelBench() (KernelBench, error) {
	d, err := repro.Paper249Dataset(42)
	if err != nil {
		return KernelBench{}, err
	}
	doc := KernelBench{NumSNPs: d.NumSNPs(), Rows: d.NumIndividuals()}

	// Count stage: the packed table is built once (as every consumer
	// holds it); the byte side gets its row selection prebuilt so
	// neither arm allocates inside the timed sweeps.
	p := genotype.PackDataset(d)
	mask := p.AllMask()
	rows := make([]int, d.NumIndividuals())
	for i := range rows {
		rows[i] = i
	}
	const sweeps = 200
	timeSweeps := func(one func() error) (int64, error) {
		if err := one(); err != nil { // warmup
			return 0, err
		}
		t0 := time.Now()
		for it := 0; it < sweeps; it++ {
			if err := one(); err != nil {
				return 0, err
			}
		}
		return time.Since(t0).Nanoseconds() / sweeps, nil
	}
	if doc.CountPackedNS, err = timeSweeps(func() error {
		for j := 0; j < p.NumSNPs(); j++ {
			p.AlleleFreq(j)
			if _, err := p.HWETest(j, mask); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return doc, err
	}
	if doc.CountByteNS, err = timeSweeps(func() error {
		for j := 0; j < d.NumSNPs(); j++ {
			d.AlleleFreq(j)
			if _, err := d.HWETest(j, rows); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return doc, err
	}
	if doc.CountPackedNS > 0 {
		doc.CountSpeedup = float64(doc.CountByteNS) / float64(doc.CountPackedNS)
	}

	// Pipeline stage: the same fixed pool of size-5 site sets through
	// both kernels' scratch paths.
	r := rng.New(7)
	sets := make([][]int, 64)
	for i := range sets {
		sets[i] = r.Sample(d.NumSNPs(), 5)
		genotype.SortSites(sets[i])
	}
	const rounds = 8
	timeEvals := func(packed bool) (int64, error) {
		pipe, err := fitness.NewPipelineKernel(d, repro.T1, ehdiall.Config{}, packed)
		if err != nil {
			return 0, err
		}
		scr := fitness.NewScratch()
		for _, s := range sets { // warmup sizes every scratch buffer
			if _, err := pipe.EvaluateScratch(s, scr); err != nil {
				return 0, err
			}
		}
		t0 := time.Now()
		for it := 0; it < rounds; it++ {
			for _, s := range sets {
				if _, err := pipe.EvaluateScratch(s, scr); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(t0).Nanoseconds() / int64(rounds*len(sets)), nil
	}
	if doc.PipelinePackedNS, err = timeEvals(true); err != nil {
		return doc, err
	}
	if doc.PipelineByteNS, err = timeEvals(false); err != nil {
		return doc, err
	}
	if doc.PipelinePackedNS > 0 {
		doc.PipelineSpeedup = float64(doc.PipelineByteNS) / float64(doc.PipelinePackedNS)
	}

	if doc.CountSpeedup < 2 {
		return doc, fmt.Errorf("packed counting sweep is only %.2fx the byte reference (packed %dns, byte %dns), want >= 2x",
			doc.CountSpeedup, doc.CountPackedNS, doc.CountByteNS)
	}
	return doc, nil
}
