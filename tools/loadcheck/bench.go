package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro"
	"repro/serve"
)

// ServeBench is the BENCH_serve.json document: one load-test snapshot
// of the serving layer. Committed over time, these snapshots are the
// perf trajectory — the fixed histogram bucket bounds and the fixed
// class names make any two of them directly diffable.
type ServeBench struct {
	// Kind tags the document ("serve"), so tooling can tell the two
	// BENCH files apart without relying on file names.
	Kind string `json:"kind"`
	// GeneratedAt is the snapshot time (UTC).
	GeneratedAt time.Time `json:"generated_at"`
	// GoVersion and NumCPU identify the toolchain and hardware class;
	// compare snapshots only like for like.
	GoVersion string `json:"go_version"`
	// NumCPU is documented with GoVersion above.
	NumCPU int `json:"num_cpu"`
	// Profile is the load shape the snapshot was taken under.
	Profile Profile `json:"profile"`
	// Client holds the client-observed latency classes (exact
	// percentiles over every sample).
	Client map[string]ClassStats `json:"client"`
	// Server is the server's own final /metrics document — request
	// totals, status breakdown, the fixed-bound latency histogram, and
	// the evaluation-engine counters.
	Server serve.MetricsInfo `json:"server"`
	// Runtime summarizes the goroutine/heap series sampled from
	// GET /debug/runtime through the soak.
	Runtime RuntimeSeries `json:"runtime"`
	// RateLimit records the rate-limit scenario (429 + Retry-After
	// under load against a throttled profile); nil when skipped.
	RateLimit *RateLimitBench `json:"rate_limit,omitempty"`
	// SLO is the verdict block; Pass false means the run failed.
	SLO SLOReport `json:"slo"`
}

// Profile records the knobs the snapshot was taken with.
type Profile struct {
	// Clients is the total concurrent client count.
	Clients int `json:"clients"`
	// DurationNS is the soak window length.
	DurationNS int64 `json:"duration_ns"`
	// Relax is the caller's -relax latency-SLO multiplier.
	Relax float64 `json:"relax"`
	// CPUScale is the automatic hardware headroom multiplied into the
	// latency bounds: the unrelaxed bounds are calibrated for a host
	// with at least 8 CPUs, and a smaller box — where the harness's
	// hundreds of client goroutines and the server split the same
	// cores — gets 8/NumCPU proportional slack. 1 on big hosts.
	CPUScale float64 `json:"cpu_scale"`
}

// RuntimeSeries condenses the sampled runtime counters: baseline
// (post-warmup), peak (mid-soak) and final (post-drain, settled).
type RuntimeSeries struct {
	// BaselineGoroutines is the goroutine count after warmup, before
	// load — the number the server must return to.
	BaselineGoroutines int `json:"baseline_goroutines"`
	// PeakGoroutines is the highest count sampled during the soak.
	PeakGoroutines int `json:"peak_goroutines"`
	// FinalGoroutines is the settled count after the drain.
	FinalGoroutines int `json:"final_goroutines"`
	// BaselineHeapBytes, PeakHeapBytes and FinalHeapBytes are the
	// matching live-heap readings.
	BaselineHeapBytes uint64 `json:"baseline_heap_bytes"`
	// PeakHeapBytes is documented with BaselineHeapBytes above.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// FinalHeapBytes is documented with BaselineHeapBytes above.
	FinalHeapBytes uint64 `json:"final_heap_bytes"`
	// Samples is the number of /debug/runtime readings taken.
	Samples int `json:"samples"`
}

// SLOReport is the assertion block of BENCH_serve.json.
type SLOReport struct {
	// Pass is the conjunction of every check.
	Pass bool `json:"pass"`
	// Checks lists each objective with its limit and observed value.
	Checks []SLOCheck `json:"checks"`
}

// SLOCheck is one service-level objective verdict.
type SLOCheck struct {
	// Name identifies the objective (stable strings).
	Name string `json:"name"`
	// Limit is the bound the run was judged against (after -relax and
	// CPU scaling, for the latency checks).
	Limit float64 `json:"limit"`
	// Actual is the observed value.
	Actual float64 `json:"actual"`
	// Unit names the unit of Limit and Actual ("ms", "count").
	Unit string `json:"unit"`
	// Pass reports whether Actual met Limit.
	Pass bool `json:"pass"`
}

// Unrelaxed p99 bounds per latency class, calibrated for a host with
// at least 8 CPUs under the default 200-client profile (smaller hosts
// get proportional slack; see Profile.CPUScale). The point is catching
// regressions — a lock held across an fsync, a leaked stream stalling
// the pump — not absolute speed; the BENCH files carry the real
// distributions. Mutations get more headroom than reads: every
// mutation is an fsync'd store write, and a job start spins up a run.
// The SSE bound is time-to-first-event on a stream whose first entry
// is the late-subscriber seed, served on subscribe.
const (
	readP99Limit = 500 * time.Millisecond
	mutP99Limit  = 2 * time.Second
	sseP99Limit  = 2 * time.Second
)

// buildServeBench assembles the document and evaluates every SLO.
func buildServeBench(clients int, duration time.Duration, relax float64,
	rec *recorder, metrics serve.MetricsInfo, smp *sampler,
	baseline, final serve.RuntimeInfo, leakedJobs int, rate *RateLimitBench) ServeBench {

	classes := rec.snapshot()
	peakG, peakHeap, samples := smp.peaks()
	cpuScale := 1.0
	if n := runtime.NumCPU(); n < 8 {
		cpuScale = 8.0 / float64(n)
	}
	doc := ServeBench{
		Kind:        "serve",
		GeneratedAt: time.Now().UTC(),
		GoVersion:   goVersion(),
		NumCPU:      runtime.NumCPU(),
		Profile:     Profile{Clients: clients, DurationNS: duration.Nanoseconds(), Relax: relax, CPUScale: cpuScale},
		Client:      classes,
		Server:      metrics,
		Runtime: RuntimeSeries{
			BaselineGoroutines: baseline.Goroutines,
			PeakGoroutines:     peakG,
			FinalGoroutines:    final.Goroutines,
			BaselineHeapBytes:  baseline.HeapAllocBytes,
			PeakHeapBytes:      peakHeap,
			FinalHeapBytes:     final.HeapAllocBytes,
			Samples:            samples,
		},
	}

	check := func(name string, limit, actual float64, unit string) {
		doc.SLO.Checks = append(doc.SLO.Checks, SLOCheck{
			Name: name, Limit: limit, Actual: actual, Unit: unit, Pass: actual <= limit,
		})
	}
	scale := relax * cpuScale
	check("read_p99", scale*ms(readP99Limit), classes[classRead].P99MS, "ms")
	check("mutate_p99", scale*ms(mutP99Limit), classes[classMut].P99MS, "ms")
	check("sse_first_event_p99", scale*ms(sseP99Limit), classes[classSSE].P99MS, "ms")
	var errs int64
	for _, c := range classes {
		errs += c.Errors
	}
	check("client_errors", 0, float64(errs), "count")
	check("jobs_running_after_drain", 0, float64(leakedJobs), "count")
	check("goroutine_growth_after_drain", goroutineSlack,
		float64(final.Goroutines-baseline.Goroutines), "count")
	check("dedup_violations", 0, float64(rec.dedupViolations.Load()), "count")
	if rate != nil {
		doc.RateLimit = rate
		// Orientation: check() passes on actual <= limit, so "the limit
		// engaged" is phrased as zero scenarios without a 429.
		notLimited := 0.0
		if rate.Limited == 0 {
			notLimited = 1
		}
		check("rate_limit_never_engaged", 0, notLimited, "count")
		check("rate_limit_retry_after_missing", 0, float64(rate.RetryAfterMissing), "count")
		notRecovered := 0.0
		if !rate.RecoveredAfterWait {
			notRecovered = 1
		}
		check("rate_limit_not_recovered", 0, notRecovered, "count")
	}

	doc.SLO.Pass = true
	for _, c := range doc.SLO.Checks {
		doc.SLO.Pass = doc.SLO.Pass && c.Pass
	}
	return doc
}

// EngineBench is the BENCH_engine.json document: the BenchmarkBackendGA
// workload distilled into a committed snapshot — complete GA runs on
// the paper's 51-SNP study through the repro facade, on the native
// backend with a per-CPU worker pool.
type EngineBench struct {
	// Kind tags the document ("engine").
	Kind string `json:"kind"`
	// GeneratedAt is the snapshot time (UTC).
	GeneratedAt time.Time `json:"generated_at"`
	// GoVersion and NumCPU identify the toolchain and hardware class.
	GoVersion string `json:"go_version"`
	// NumCPU is documented with GoVersion above.
	NumCPU int `json:"num_cpu"`
	// Preset is the synthetic study shape the runs evaluated (51).
	Preset int `json:"preset"`
	// Runs holds the sequential benchmark runs, distinct seeds, shared
	// memoizing cache — later runs show the cache paying off.
	Runs []EngineRun `json:"runs"`
	// WallNS is the wall-clock total of the sequential runs.
	WallNS int64 `json:"wall_ns"`
	// RequestedPerSec is requested fitness scores per second across
	// the sequential runs — the paper's "evaluations" cost metric as
	// seen by the GA, the headline throughput number.
	RequestedPerSec float64 `json:"requested_evals_per_sec"`
	// ComputedPerSec counts only pipeline evaluations actually
	// performed per second (cache hits excluded).
	ComputedPerSec float64 `json:"computed_evals_per_sec"`
	// HitRate is the memoizing cache's hit fraction over all requests.
	HitRate float64 `json:"hit_rate"`
	// CoalesceRate is the fraction of requests that piggybacked on an
	// identical in-flight computation, measured by a dedicated phase
	// that runs two identical-seed jobs concurrently (sequential runs
	// alone never coalesce).
	CoalesceRate float64 `json:"coalesce_rate"`
	// Engine is the backend's final cumulative counter report.
	Engine repro.EngineReport `json:"engine"`
	// Sharded pins sharded-vs-monolithic window-batch throughput on a
	// wide synthetic study (see ShardedBench).
	Sharded *ShardedBench `json:"sharded,omitempty"`
	// Race pins racing-vs-sequential evaluation cost for a 4-lane
	// portfolio over one shared memo cache (see RaceBench).
	Race *RaceBench `json:"race,omitempty"`
	// Kernel pins packed-vs-byte counting-kernel throughput on the
	// 249-SNP preset (see KernelBench).
	Kernel *KernelBench `json:"kernel,omitempty"`
}

// RaceBench is the racing phase of BENCH_engine.json: the same four
// optimizer×statistic configurations (ga and stpga, each on T1 and
// AA) run once as a portfolio race over a single session — lanes of a
// statistic sharing one memo cache — and once as four sequential runs
// on fresh sessions. The committed numbers are the cache-sharing
// dividend the racing coordinator exists for: RacedComputed must stay
// strictly below SequentialComputed.
type RaceBench struct {
	// Lanes is the portfolio size (4).
	Lanes int `json:"lanes"`
	// RacedComputed is the backend evaluations actually computed
	// across all lanes and statistics during the race.
	RacedComputed int64 `json:"raced_computed"`
	// RacedWallNS is the race's wall-clock time.
	RacedWallNS int64 `json:"raced_wall_ns"`
	// SequentialComputed is the computed-evaluation total of the same
	// four configurations run one after another on fresh sessions.
	SequentialComputed int64 `json:"sequential_computed"`
	// SequentialWallNS is the sequential runs' wall-clock total.
	SequentialWallNS int64 `json:"sequential_wall_ns"`
	// SavedFraction is 1 - RacedComputed/SequentialComputed.
	SavedFraction float64 `json:"saved_fraction"`
	// SharedHits counts race evaluations answered because another
	// lane of the same statistic had already requested the same set.
	SharedHits int64 `json:"shared_hits"`
	// Winner names the race's winning lane.
	Winner string `json:"winner"`
}

// raceBenchSpec is the portfolio both arms of the racing benchmark
// run: two optimizers crossed with two statistics.
func raceBenchSpec() []repro.RaceLaneSpec {
	return []repro.RaceLaneSpec{
		{Optimizer: "ga", Statistic: "T1"},
		{Optimizer: "stpga", Statistic: "T1"},
		{Optimizer: "ga", Statistic: "AA"},
		{Optimizer: "stpga", Statistic: "AA"},
	}
}

// runRaceBench runs the racing phase: the 4-lane portfolio raced over
// one session, then the same 4 configurations sequentially on fresh
// sessions, comparing computed backend evaluations. Fails when racing
// is not strictly cheaper — that regression would mean the lanes
// stopped sharing the memo cache.
func runRaceBench() (RaceBench, error) {
	cfg := engineConfig(21)
	ctx := context.Background()
	doc := RaceBench{Lanes: len(raceBenchSpec())}

	d, err := repro.Paper51Dataset(1)
	if err != nil {
		return RaceBench{}, err
	}
	s, err := repro.NewSession(d)
	if err != nil {
		return RaceBench{}, err
	}
	t0 := time.Now()
	job, err := s.Race(ctx, repro.RaceSpec{Lanes: raceBenchSpec(), SubsetSize: 3, Config: &cfg})
	if err != nil {
		s.Close()
		return RaceBench{}, fmt.Errorf("race: %w", err)
	}
	res, err := job.Wait()
	if err != nil {
		s.Close()
		return RaceBench{}, fmt.Errorf("race: %w", err)
	}
	doc.RacedWallNS = time.Since(t0).Nanoseconds()
	doc.SharedHits = res.TotalSharedHits
	doc.Winner = res.Winner.Name
	if rep := job.Report(); rep.Engine != nil {
		doc.RacedComputed = rep.Engine.Computed
	}
	s.Close()

	t0 = time.Now()
	for _, lane := range raceBenchSpec() {
		fresh, err := repro.NewSession(d)
		if err != nil {
			return RaceBench{}, err
		}
		j, err := fresh.Race(ctx, repro.RaceSpec{Lanes: []repro.RaceLaneSpec{lane}, SubsetSize: 3, Config: &cfg})
		if err != nil {
			fresh.Close()
			return RaceBench{}, fmt.Errorf("sequential %s/%s: %w", lane.Optimizer, lane.Statistic, err)
		}
		if _, err := j.Wait(); err != nil {
			fresh.Close()
			return RaceBench{}, fmt.Errorf("sequential %s/%s: %w", lane.Optimizer, lane.Statistic, err)
		}
		if rep := j.Report(); rep.Engine != nil {
			doc.SequentialComputed += rep.Engine.Computed
		}
		fresh.Close()
	}
	doc.SequentialWallNS = time.Since(t0).Nanoseconds()
	if doc.SequentialComputed > 0 {
		doc.SavedFraction = 1 - float64(doc.RacedComputed)/float64(doc.SequentialComputed)
	}
	if doc.RacedComputed >= doc.SequentialComputed {
		return RaceBench{}, fmt.Errorf("racing computed %d evaluations, sequential %d — the shared cache paid nothing",
			doc.RacedComputed, doc.SequentialComputed)
	}
	return doc, nil
}

// EngineRun is one sequential GA run of the benchmark phase.
type EngineRun struct {
	// Seed is the run's GA seed.
	Seed uint64 `json:"seed"`
	// Generations is the number of generations to convergence.
	Generations int `json:"generations"`
	// Evaluations is the run's requested-score count.
	Evaluations int64 `json:"evaluations"`
	// WallNS is the run's wall-clock time.
	WallNS int64 `json:"wall_ns"`
	// EvalsPerSec is Evaluations over WallNS.
	EvalsPerSec float64 `json:"evals_per_sec"`
}

// runEngineBench runs the in-process engine phase: n sequential GA
// runs with distinct seeds on one session (shared cache), then one
// pair of identical-seed jobs started concurrently to measure request
// coalescing.
func runEngineBench(n int) (EngineBench, error) {
	d, err := repro.Paper51Dataset(1)
	if err != nil {
		return EngineBench{}, err
	}
	s, err := repro.NewSession(d)
	if err != nil {
		return EngineBench{}, err
	}
	defer s.Close()

	doc := EngineBench{
		Kind:        "engine",
		GeneratedAt: time.Now().UTC(),
		GoVersion:   goVersion(),
		NumCPU:      runtime.NumCPU(),
		Preset:      51,
	}
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < n; i++ {
		seed := uint64(i + 1)
		t0 := time.Now()
		res, err := s.Run(ctx, repro.WithGAConfig(engineConfig(seed)))
		if err != nil {
			return EngineBench{}, fmt.Errorf("run seed %d: %w", seed, err)
		}
		wall := time.Since(t0)
		doc.Runs = append(doc.Runs, EngineRun{
			Seed:        seed,
			Generations: res.Generations,
			Evaluations: res.TotalEvaluations,
			WallNS:      wall.Nanoseconds(),
			EvalsPerSec: float64(res.TotalEvaluations) / wall.Seconds(),
		})
	}
	wall := time.Since(start)
	doc.WallNS = wall.Nanoseconds()
	seq, ok := s.Report()
	if !ok {
		return EngineBench{}, fmt.Errorf("backend reports no counters")
	}
	doc.RequestedPerSec = float64(seq.Requests) / wall.Seconds()
	doc.ComputedPerSec = float64(seq.Computed) / wall.Seconds()
	if seq.Requests > 0 {
		doc.HitRate = float64(seq.CacheHits) / float64(seq.Requests)
	}

	// Coalescing phase: two jobs with the same seed walk the same
	// evaluation sequence concurrently, so identical batches are in
	// flight together and the singleflight path gets exercised.
	pair := make([]*repro.Job, 2)
	for i := range pair {
		job, err := s.Start(ctx, repro.WithGAConfig(engineConfig(9001)))
		if err != nil {
			return EngineBench{}, fmt.Errorf("coalesce job %d: %w", i, err)
		}
		pair[i] = job
	}
	for i, job := range pair {
		if _, err := job.Wait(); err != nil {
			return EngineBench{}, fmt.Errorf("coalesce job %d: %w", i, err)
		}
	}
	all, _ := s.Report()
	if dr := all.Requests - seq.Requests; dr > 0 {
		doc.CoalesceRate = float64(all.Coalesced-seq.Coalesced) / float64(dr)
	}
	doc.Engine = all

	sharded, err := runShardedBench()
	if err != nil {
		return EngineBench{}, fmt.Errorf("sharded bench: %w", err)
	}
	doc.Sharded = &sharded

	kernel, err := runKernelBench()
	if err != nil {
		return EngineBench{}, fmt.Errorf("kernel bench: %w", err)
	}
	doc.Kernel = &kernel
	return doc, nil
}
