package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// runMutexIO flags I/O-ish calls made lexically between a
// sync.Mutex/RWMutex Lock (or RLock) and its Unlock — the static
// encoding of the PR 7 janitor-stall bug, where fsync'd store
// deletions under the registry mutex stalled every concurrent
// request.
//
// The walk is lexical with two refinements that match this codebase's
// locking idioms: a deferred Unlock keeps the region open to the end
// of the function, and an Unlock inside a nested block (the
// early-return `if cond { mu.Unlock(); return }` shape) ends the
// region only on that path, not for the statements that follow the
// block. I/O-ishness propagates through same-package helpers
// (putRecord → Store.Put), so wrapping the write does not hide it.
// Suppress with //ldvet:allow mutexio on the call line or the line
// taking the lock (which covers the whole region).
func runMutexIO(u *unit, cfg *config) []finding {
	w := &mioWalker{u: u, io: ioishFuncs(u)}
	for _, file := range u.files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.walk(fn.Body.List, map[string]lockSite{})
				}
				return false // FuncLits inside are found by the continued Inspect below
			}
			return true
		})
		// Function literals get their own fresh region state: a
		// goroutine or callback body holds only the locks it takes
		// itself.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.walk(lit.Body.List, map[string]lockSite{})
			}
			return true
		})
	}
	return w.out
}

// lockSite remembers where a lock was taken so findings can point at
// the region start (and annotations there can cover the region).
type lockSite struct {
	pos      token.Pos
	deferred bool
}

type mioWalker struct {
	u   *unit
	io  map[*types.Func]string
	out []finding
}

// walk processes one statement list with the set of locks held on
// entry. Nested blocks receive a copy of the state, so an early-exit
// Unlock inside a branch does not end the region for the statements
// after the branch.
func (w *mioWalker) walk(stmts []ast.Stmt, held map[string]lockSite) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, op, ok := w.lockOp(call); ok {
					switch op {
					case "Lock", "RLock":
						held[key] = lockSite{pos: call.Pos()}
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
			w.scan(s, held)
		case *ast.DeferStmt:
			if key, op, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				if ls, ok := held[key]; ok {
					ls.deferred = true
					held[key] = ls
				}
			}
			// A deferred call body runs at function exit, possibly
			// after the unlock; out of lexical scope either way.
		case *ast.IfStmt:
			w.scan(s.Init, held)
			w.scan(s.Cond, held)
			w.walk([]ast.Stmt{s.Body}, cloneLocks(held))
			if s.Else != nil {
				w.walk([]ast.Stmt{s.Else}, cloneLocks(held))
			}
		case *ast.ForStmt:
			w.scan(s.Init, held)
			w.scan(s.Cond, held)
			w.scan(s.Post, held)
			w.walk(s.Body.List, cloneLocks(held))
		case *ast.RangeStmt:
			w.scan(s.X, held)
			w.walk(s.Body.List, cloneLocks(held))
		case *ast.SwitchStmt:
			w.scan(s.Init, held)
			w.scan(s.Tag, held)
			w.walkCases(s.Body, held)
		case *ast.TypeSwitchStmt:
			w.scan(s.Init, held)
			w.walkCases(s.Body, held)
		case *ast.SelectStmt:
			w.walkCases(s.Body, held)
		case *ast.BlockStmt:
			w.walk(s.List, cloneLocks(held))
		case *ast.LabeledStmt:
			w.walk([]ast.Stmt{s.Stmt}, held)
		case *ast.GoStmt:
			// The goroutine body runs concurrently, not under the
			// caller's lock; its own locks are covered by the FuncLit
			// pass.
		default:
			w.scan(st, held)
		}
	}
}

// walkCases handles the clause bodies of switch/select statements.
func (w *mioWalker) walkCases(body *ast.BlockStmt, held map[string]lockSite) {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scan(e, held)
			}
			w.walk(c.Body, cloneLocks(held))
		case *ast.CommClause:
			if c.Comm != nil {
				w.scan(c.Comm, held)
			}
			w.walk(c.Body, cloneLocks(held))
		}
	}
}

// scan inspects one statement or expression for I/O-ish calls while
// any lock is held. Function literal subtrees are skipped (they run
// elsewhere).
func (w *mioWalker) scan(n ast.Node, held map[string]lockSite) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch c := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.checkCall(c, held)
		}
		return true
	})
}

// checkCall emits a finding when the callee is I/O-ish.
func (w *mioWalker) checkCall(call *ast.CallExpr, held map[string]lockSite) {
	callee := calleeFunc(w.u, call)
	if callee == nil {
		return
	}
	desc, ok := directIOish(callee)
	if !ok {
		desc, ok = w.io[callee]
	}
	if !ok {
		return
	}
	for key, site := range held {
		if w.u.allowedAt("mutexio", call.Pos(), site.pos) {
			return
		}
		region := "locked"
		if site.deferred {
			region = "deferred-unlock region started"
		}
		w.out = append(w.out, finding{
			Analyzer: "mutexio",
			Pos:      w.u.posOf(call.Pos()),
			Msg: fmt.Sprintf("%s while holding %s (%s at %s)",
				desc, key, region, w.u.posOf(site.pos)),
		})
		return // one finding per call is enough, whatever is held
	}
}

// lockOp classifies a call as a mutex operation, returning the lock's
// receiver expression ("r.mu") as the region key. Promoted methods of
// embedded mutexes resolve the same way.
func (w *mioWalker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, _ := w.u.info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return "", "", false
	}
	switch namedName(recv.Type()) {
	case "Mutex", "RWMutex":
		return types.ExprString(sel.X), name, true
	}
	return "", "", false
}

func cloneLocks(m map[string]lockSite) map[string]lockSite {
	c := make(map[string]lockSite, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// calleeFunc resolves the *types.Func a call invokes, nil for
// builtins, conversions and calls through plain function values.
func calleeFunc(u *unit, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := u.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := u.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// directIOish classifies calls that are blocking I/O (or sleeps) by
// themselves: the os package (minus its pure helpers), net/http,
// time.Sleep, and store-shaped methods — Put/Get/Delete/List on a
// type whose name ends in "Store" (the serve.Store seam and every
// implementation).
func directIOish(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ", "Expand", "ExpandEnv",
			"IsNotExist", "IsExist", "IsPermission", "IsTimeout", "IsPathSeparator",
			"Getpid", "Getppid", "Getuid", "Geteuid", "Getgid", "Getegid", "NewError":
			return "", false // pure or in-memory helpers
		}
		return "os." + name, true
	case "net/http":
		return "net/http " + name, true
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	}
	if recv := fn.Signature().Recv(); recv != nil {
		tname := namedName(recv.Type())
		if len(tname) >= 5 && tname[len(tname)-5:] == "Store" {
			switch name {
			case "Put", "Get", "Delete", "List":
				return tname + "." + name + " (store I/O)", true
			}
		}
	}
	return "", false
}

// namedName unwraps pointers and returns the named type's name ("" if
// unnamed).
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	}
	return ""
}

// ioishFuncs computes, by fixed point, the package-local functions
// that transitively reach a directly I/O-ish call, so a locked region
// calling a same-package wrapper (putRecord, restoreLocked) is still
// flagged. Goroutine bodies do not count: work launched under a lock
// runs beside it, not under it.
func ioishFuncs(u *unit) map[*types.Func]string {
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, file := range u.files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := u.info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
		}
	}
	io := map[*types.Func]string{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			if _, done := io[fn]; done {
				continue
			}
			if reason, ok := bodyReachesIO(u, fd, io); ok {
				io[fn] = fmt.Sprintf("call to %s (reaches %s)", fn.Name(), reason)
				changed = true
			}
		}
	}
	return io
}

// bodyReachesIO reports whether fd's body makes a directly I/O-ish
// call or calls an already-marked package-local function.
func bodyReachesIO(u *unit, fd *ast.FuncDecl, io map[*types.Func]string) (string, bool) {
	var reason string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch c := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			callee := calleeFunc(u, c)
			if callee == nil {
				return true
			}
			if desc, ok := directIOish(callee); ok {
				reason = desc
			} else if desc, ok := io[callee]; ok {
				_ = desc
				reason = callee.Name()
			}
		}
		return true
	})
	return reason, reason != ""
}
