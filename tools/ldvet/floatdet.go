package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// runFloatdet polices the bit-identity kernel packages — the code
// whose packed-vs-byte contract (PR 9) is "same floats, bit for bit".
// Three constructs can break that contract silently and are banned
// here:
//
//   - float accumulation inside a map range statement: map iteration
//     order is randomized, and float addition is not associative, so
//     the same inputs can produce different low bits per run;
//   - package-level math/rand calls: the global source cannot be
//     injected or replayed (rand.New with an explicit source is the
//     fix and is allowed);
//   - time.Now: a clock read inside a kernel means the result depends
//     on when it ran.
func runFloatdet(u *unit, cfg *config) []finding {
	if !pathInScope(u.path, cfg.floatScope) {
		return nil
	}
	var out []finding
	report := func(p token.Pos, msg string) {
		if u.allowedAt("floatdet", p) {
			return
		}
		out = append(out, finding{Analyzer: "floatdet", Pos: u.posOf(p), Msg: msg})
	}
	for _, file := range u.files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nd := n.(type) {
			case *ast.RangeStmt:
				if t := u.info.TypeOf(nd.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRangeBody(u, nd.Body, report)
					}
				}
			case *ast.CallExpr:
				checkKernelCall(u, nd, report)
			}
			return true
		})
	}
	return out
}

// checkMapRangeBody flags float accumulator writes inside a map range
// body: compound assignments, increments, and `x = x ⊕ ...` shapes on
// float-typed lvalues. Nested function literals are skipped.
func checkMapRangeBody(u *unit, body *ast.BlockStmt, report func(token.Pos, string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IncDecStmt:
			if isFloat(u.info.TypeOf(st.X)) {
				report(st.Pos(), fmt.Sprintf("float accumulator %s written under map iteration order — iterate a sorted or first-appearance key list instead", types.ExprString(st.X)))
			}
		case *ast.AssignStmt:
			checkFloatAssign(u, st, report)
		}
		return true
	})
}

// checkFloatAssign flags the accumulator shapes of an assignment.
func checkFloatAssign(u *unit, st *ast.AssignStmt, report func(token.Pos, string)) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(st.Lhs) == 1 && isFloat(u.info.TypeOf(st.Lhs[0])) {
			report(st.Pos(), fmt.Sprintf("float accumulator %s written under map iteration order — iterate a sorted or first-appearance key list instead", types.ExprString(st.Lhs[0])))
		}
	case token.ASSIGN:
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) || !isFloat(u.info.TypeOf(lhs)) {
				continue
			}
			// `x = x + v` is an accumulator when the lvalue appears
			// in its own right-hand side.
			lstr := types.ExprString(lhs)
			found := false
			ast.Inspect(st.Rhs[i], func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && types.ExprString(e) == lstr {
					found = true
				}
				return !found
			})
			if found {
				report(st.Pos(), fmt.Sprintf("float accumulator %s written under map iteration order — iterate a sorted or first-appearance key list instead", lstr))
			}
		}
	}
}

// checkKernelCall flags package-level math/rand and time.Now calls.
func checkKernelCall(u *unit, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := calleeFunc(u, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if fn.Signature().Recv() != nil {
			return // methods on *rand.Rand carry an injected source
		}
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return // constructing an injectable source is the fix
		}
		report(call.Pos(), fmt.Sprintf("package-level %s.%s uses the global source — inject a *rand.Rand (see internal/rng)", fn.Pkg().Path(), fn.Name()))
	case "time":
		if fn.Name() == "Now" {
			report(call.Pos(), "time.Now inside a bit-identity kernel package — results must not depend on the clock")
		}
	}
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if n, isNamed := t.(*types.Named); isNamed {
			b, ok = n.Underlying().(*types.Basic)
		}
	}
	return ok && b.Info()&types.IsFloat != 0
}
