// Package wiretag is an ldvet fixture: a struct with any json tag is
// a wire struct, and every exported non-embedded field of one must
// carry an explicit tag.
package wiretag

// Info is a wire struct with one drifting field.
type Info struct {
	ID     string `json:"id"`
	Count  int    // want "exported field Info.Count of wire struct lacks an explicit json tag"
	note   string // unexported: not part of the wire
	Hidden bool   `json:"-"` // explicitly excluded is still explicit
}

// Report embeds Info; the embedded field marshals inline by design
// and needs no tag.
type Report struct {
	Info
	Took int64 `json:"took_ns"`
}

// plain carries no json tags at all, so it is not a wire struct and
// its bare exported field is fine.
type plain struct {
	A int
}

// Allowed documents a justified exception on the field itself.
type Allowed struct {
	ID   string   `json:"id"`
	Next *Allowed //ldvet:allow wiretag: fixture — recursion handled elsewhere
}
