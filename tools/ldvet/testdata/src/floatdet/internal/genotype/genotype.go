// Package genotype is an ldvet fixture for the kernel-determinism
// analyzer. Its import path ends in internal/genotype, so the
// floatdet scope rules apply to it exactly as they do to the real
// kernel package.
package genotype

import (
	"math/rand"
	"time"
)

func mapAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulator sum written under map iteration order"
	}
	return sum
}

func mapAccumPlain(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want "float accumulator sum written under map iteration order"
	}
	return sum
}

func sliceAccum(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // no finding: slice order is deterministic
	}
	return sum
}

func mapIntCount(m map[int]float64) int {
	n := 0
	for range m {
		n++ // no finding: integer counting is order-free
	}
	return n
}

func mapCollect(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // no finding: collect then sort is the fix
	}
	return keys
}

func globalRand() float64 {
	return rand.Float64() // want "package-level math/rand.Float64 uses the global source"
}

func injectedRand(r *rand.Rand) float64 {
	return r.Float64() // no finding: the source is injected
}

func buildRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // no finding: constructing a source is the fix
}

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now inside a bit-identity kernel package"
}

func allowed() int64 {
	return time.Now().UnixNano() //ldvet:allow floatdet: fixture — wall time never reaches a fitness value here
}
