// Package mutexio is an ldvet fixture: every construct the mutexio
// analyzer must flag (or deliberately not flag), with // want
// comments naming the expected findings.
package mutexio

import (
	"os"
	"sync"
	"time"
)

type fakeStore struct{}

func (s *fakeStore) Put(id string) error    { return nil }
func (s *fakeStore) Delete(id string) error { return nil }

type registry struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	st  *fakeStore
	n   int
	out []string
}

// deferred-unlock region: everything to the end of the function is
// under the lock.
func (r *registry) deferredRegion() {
	r.mu.Lock()
	defer r.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding r.mu"
	_ = os.Remove("x")           // want "os.Remove while holding r.mu"
	_ = r.st.Put("k")            // want "fakeStore.Put (store I/O) while holding r.mu"
	r.n++
}

// explicit unlock: the region ends at the Unlock, and an early-exit
// unlock inside a branch only ends it on that path.
func (r *registry) earlyExit(cond bool) {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		_ = os.Remove("x") // unlocked on this path: no finding
		return
	}
	_ = os.Remove("y") // want "os.Remove while holding r.mu"
	r.mu.Unlock()
	_ = os.Remove("z") // after the unlock: no finding
}

// helper reaches store I/O, so calling it under the lock is flagged
// through the package-local propagation.
func (r *registry) forget(id string) { _ = r.st.Delete(id) }

func (r *registry) viaHelper() {
	r.mu.Lock()
	r.forget("k") // want "call to forget"
	r.mu.Unlock()
}

// read locks are lock regions too.
func (r *registry) readLocked() {
	r.rw.RLock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding r.rw"
	r.rw.RUnlock()
}

// an annotation on the Lock line covers the whole region.
func (r *registry) allowedRegion() {
	r.mu.Lock() //ldvet:allow mutexio: fixture — the whole region is exempt
	defer r.mu.Unlock()
	time.Sleep(time.Millisecond)
	_ = r.st.Put("k")
}

// an annotation on the call line covers just that call (and, by the
// line-above rule, would cover the next line — hence the ordering).
func (r *registry) allowedCall() {
	r.mu.Lock()
	_ = r.st.Put("j") // want "fakeStore.Put (store I/O) while holding r.mu"
	_ = r.st.Put("k") //ldvet:allow mutexio: fixture — this one write is deliberate
	r.mu.Unlock()
}

// a goroutine launched under the lock runs beside it, not under it;
// its own locks are analyzed separately.
func (r *registry) launches() {
	r.mu.Lock()
	go func() {
		_ = os.Remove("x") // no finding: not under the caller's lock
	}()
	go func() {
		var mu sync.Mutex
		mu.Lock()
		time.Sleep(time.Millisecond) // want "time.Sleep while holding mu"
		mu.Unlock()
	}()
	r.mu.Unlock()
}

// pure os helpers are not I/O.
func (r *registry) pureHelpers() {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, _ = os.LookupEnv("HOME") // no finding
	r.out = append(r.out, os.Getenv("USER"))
}
