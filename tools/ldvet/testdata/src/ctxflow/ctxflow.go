// Package ctxflow is an ldvet fixture for the context-threading
// analyzer: fresh root contexts in library code, the recognized
// nil-guard, and the receives-ctx-but-passes-Background class.
package ctxflow

import "context"

func fresh() context.Context {
	return context.Background() // want "context.Background() in library code"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO() in library code"
}

// the defensive nil-guard over an existing context variable is
// exempt: it only fires for context-free compat callers.
func guarded(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // no finding
	}
	return ctx
}

func callee(ctx context.Context, n int) {}

// a function that receives a ctx must thread it, not mint a new one.
func drops(ctx context.Context) {
	callee(context.Background(), 1) // want "receives ctx but passes a fresh context.Background() to callee"
}

func threads(ctx context.Context) {
	callee(ctx, 1) // no finding
}

// non-context arguments are not confused with context ones.
func values(ctx context.Context) {
	callee(ctx, len("x")) // no finding
}

func allowed() context.Context {
	return context.Background() //ldvet:allow ctxflow: fixture — a written-down exception
}
