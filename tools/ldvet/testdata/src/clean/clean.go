// Package clean is the known-good ldvet fixture: locks, wire structs
// and contexts used the way the analyzers want them. The driver test
// asserts the whole suite is silent here.
package clean

import (
	"context"
	"os"
	"sync"
)

// Wire is fully tagged.
type Wire struct {
	ID    string `json:"id"`
	Count int    `json:"count"`
}

type store struct {
	mu sync.Mutex
	m  map[string]string
}

// Put holds the lock only for the in-memory mutation and does its
// file I/O outside the region.
func (s *store) Put(path, id, v string) error {
	s.mu.Lock()
	s.m[id] = v
	s.mu.Unlock()
	return os.WriteFile(path, []byte(v), 0o644)
}

// Run threads its context down.
func Run(ctx context.Context, f func(context.Context) error) error {
	return f(ctx)
}
