package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// runCtxflow enforces end-to-end context threading, the invariant
// behind PR 8's canceled-exhaustive-lane hang: cancellation only
// works if every layer passes the caller's context down.
//
// Two rules:
//
//  1. Library code does not mint root contexts: context.Background()
//     and context.TODO() are flagged outside the entry-point package
//     trees (cmd/, tools/, examples/) — _test.go files are never
//     loaded. The defensive nil-guard `if ctx == nil { ctx =
//     context.Background() }` is recognized and exempt: it only fires
//     for callers of the deprecated context-free API.
//
//  2. Everywhere (entry points included), a function that receives a
//     context parameter must not pass a fresh Background()/TODO() to
//     a context-taking callee — that silently detaches the callee
//     from cancellation.
func runCtxflow(u *unit, cfg *config) []finding {
	exemptPkg := pathHasSegment(u.path, cfg.ctxExempt)
	guarded := nilGuardCalls(u)
	var out []finding
	reported := map[token.Pos]bool{}
	report := func(p token.Pos, msg string) {
		if reported[p] || u.allowedAt("ctxflow", p) {
			return
		}
		reported[p] = true
		out = append(out, finding{Analyzer: "ctxflow", Pos: u.posOf(p), Msg: msg})
	}

	for _, file := range u.files {
		// Rule 2 first, so its more specific message wins when both
		// rules hit the same call.
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			ctxParam := contextParamName(u, fd.Type)
			if ctxParam == "" {
				return true
			}
			ast.Inspect(fd.Body, func(nd ast.Node) bool {
				if _, isLit := nd.(*ast.FuncLit); isLit {
					return false // a closure may legitimately detach
				}
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				sig, _ := u.info.TypeOf(call.Fun).(*types.Signature)
				if sig == nil {
					return true
				}
				for i, arg := range call.Args {
					name, ok := rootCtxCall(u, arg)
					if !ok || i >= sig.Params().Len() || !isContextType(sig.Params().At(i).Type()) {
						continue
					}
					report(arg.Pos(), fmt.Sprintf(
						"function receives %s but passes a fresh context.%s() to %s — thread the caller's context",
						ctxParam, name, types.ExprString(call.Fun)))
				}
				return true
			})
			return true
		})

		if exemptPkg {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isRoot := rootCtxCall(u, call)
			if !isRoot || guarded[call.Pos()] {
				return true
			}
			report(call.Pos(), fmt.Sprintf(
				"context.%s() in library code — accept a ctx from the caller (entry points live in cmd/, tools/, examples/)",
				name))
			return true
		})
	}
	return out
}

// rootCtxCall reports whether the expression is a direct
// context.Background() or context.TODO() call.
func rootCtxCall(u *unit, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(u, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// contextParamName returns the name of the function's context
// parameter ("" when it has none, or only an unnamed/blank one).
func contextParamName(u *unit, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, f := range ft.Params.List {
		t := u.info.TypeOf(f.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range f.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// nilGuardCalls collects the positions of Background()/TODO() calls
// that are the body of a `if ctx == nil { ctx = context.Background() }`
// guard over an existing context variable.
func nilGuardCalls(u *unit) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	for _, file := range u.files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok || cond.Op != token.EQL {
				return true
			}
			ident := nilComparedIdent(u, cond)
			if ident == "" {
				return true
			}
			for _, st := range ifs.Body.List {
				as, ok := st.(*ast.AssignStmt)
				if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					continue
				}
				lhs, ok := as.Lhs[0].(*ast.Ident)
				if !ok || lhs.Name != ident {
					continue
				}
				if _, isRoot := rootCtxCall(u, as.Rhs[0]); isRoot {
					out[as.Rhs[0].Pos()] = true
				}
			}
			return true
		})
	}
	return out
}

// nilComparedIdent returns the name of the context-typed identifier
// compared against nil ("" when the condition has another shape).
func nilComparedIdent(u *unit, cond *ast.BinaryExpr) string {
	for _, pair := range [2][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
		id, ok := pair[0].(*ast.Ident)
		if !ok {
			continue
		}
		if nilIdent, ok := pair[1].(*ast.Ident); !ok || nilIdent.Name != "nil" {
			continue
		}
		if t := u.info.TypeOf(id); t != nil && isContextType(t) {
			return id.Name
		}
	}
	return ""
}
