package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixtureDirs lists every fixture package under testdata/src. The
// floatdet fixture nests under internal/genotype so its import path
// suffix-matches the real kernel scope.
var fixtureDirs = []string{
	"testdata/src/mutexio",
	"testdata/src/wiretag",
	"testdata/src/ctxflow",
	"testdata/src/floatdet/internal/genotype",
	"testdata/src/clean",
}

// Loading type-checks the stdlib from source, which dominates the
// test's runtime; do it once and index the units by import path.
var (
	loadOnce    sync.Once
	loadedUnits map[string]*unit
	loadErr     error
)

func fixtureUnit(t *testing.T, path string) *unit {
	t.Helper()
	loadOnce.Do(func() {
		units, err := loadUnits(fixtureDirs)
		if err != nil {
			loadErr = err
			return
		}
		loadedUnits = map[string]*unit{}
		for _, u := range units {
			loadedUnits[u.path] = u
		}
	})
	if loadErr != nil {
		t.Fatalf("loading fixtures: %v", loadErr)
	}
	u, ok := loadedUnits[path]
	if !ok {
		t.Fatalf("no fixture unit %q", path)
	}
	return u
}

func fixtureConfig() *config {
	cfg := defaultConfig()
	cfg.enable = map[string]bool{"mutexio": true, "wiretag": true, "ctxflow": true, "floatdet": true}
	return cfg
}

// wantComments parses the fixture's "// want "substr"" comments,
// returning expected message substrings keyed by "file:line".
func wantComments(t *testing.T, u *unit) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for _, file := range u.files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := c.Text
				for {
					i := strings.Index(text, `want "`)
					if i < 0 {
						break
					}
					rest := text[i+len(`want "`):]
					j := strings.IndexByte(rest, '"')
					if j < 0 {
						t.Fatalf("%s: unterminated want comment %q", u.posOf(c.Pos()), c.Text)
					}
					pos := u.fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					out[key] = append(out[key], rest[:j])
					text = rest[j+1:]
				}
			}
		}
	}
	return out
}

// fileLine trims the column off a finding position.
func fileLine(pos string) string {
	if i := strings.LastIndexByte(pos, ':'); i >= 0 {
		return pos[:i]
	}
	return pos
}

// TestFixtures runs the whole suite over each finding fixture and
// matches the results against the // want comments exactly: every
// want must be hit, every finding must be wanted.
func TestFixtures(t *testing.T) {
	for _, path := range []string{"mutexio", "wiretag", "ctxflow", "floatdet/internal/genotype"} {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			u := fixtureUnit(t, path)
			findings, err := runAnalyzers([]*unit{u}, fixtureConfig())
			if err != nil {
				t.Fatalf("runAnalyzers: %v", err)
			}
			if len(findings) == 0 {
				t.Fatalf("no findings; the fixture wants some")
			}
			wants := wantComments(t, u)
			if len(wants) == 0 {
				t.Fatalf("fixture has no want comments")
			}
			matched := map[string]bool{} // "file:line substr" -> hit
			for _, f := range findings {
				key := fileLine(f.Pos)
				ok := false
				for _, substr := range wants[key] {
					if strings.Contains(f.Msg, substr) {
						matched[key+" "+substr] = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected finding at %s: [%s] %s", f.Pos, f.Analyzer, f.Msg)
				}
			}
			for key, substrs := range wants {
				for _, substr := range substrs {
					if !matched[key+" "+substr] {
						t.Errorf("missing finding at %s matching %q", key, substr)
					}
				}
			}
		})
	}
}

// TestCleanFixture asserts the suite is silent on the known-good
// package.
func TestCleanFixture(t *testing.T) {
	u := fixtureUnit(t, "clean")
	findings, err := runAnalyzers([]*unit{u}, fixtureConfig())
	if err != nil {
		t.Fatalf("runAnalyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding on clean fixture at %s: [%s] %s", f.Pos, f.Analyzer, f.Msg)
	}
}

// TestEnableGating asserts -enable style selection really disables
// the other analyzers: only floatdet enabled, the mutexio fixture is
// silent.
func TestEnableGating(t *testing.T) {
	u := fixtureUnit(t, "mutexio")
	cfg := fixtureConfig()
	cfg.enable = map[string]bool{"floatdet": true}
	findings, err := runAnalyzers([]*unit{u}, cfg)
	if err != nil {
		t.Fatalf("runAnalyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding with mutexio disabled at %s: [%s] %s", f.Pos, f.Analyzer, f.Msg)
	}
}

// TestWiretagGolden exercises the manifest half of wiretag: -update
// writes a clean golden, then each kind of drift is reported.
func TestWiretagGolden(t *testing.T) {
	u := fixtureUnit(t, "wiretag")
	units := []*unit{u}
	cfg := fixtureConfig()
	cfg.wireScope = []string{"wiretag"} // the fixture IS the wire surface here
	cfg.goldenPath = filepath.Join(t.TempDir(), "wiretags.golden")

	// Before any golden exists, every computed tag is unpinned drift.
	findings, err := checkManifest(units, cfg)
	if err != nil {
		t.Fatalf("checkManifest: %v", err)
	}
	if len(findings) == 0 || !strings.Contains(findings[0].Msg, "not pinned") {
		t.Fatalf("want unpinned drift before -update, got %v", findings)
	}

	// -update writes the manifest; the next plain run is clean.
	cfg.update = true
	if _, err := checkManifest(units, cfg); err != nil {
		t.Fatalf("checkManifest -update: %v", err)
	}
	cfg.update = false
	findings, err = checkManifest(units, cfg)
	if err != nil {
		t.Fatalf("checkManifest after update: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("want clean manifest after -update, got %v", findings)
	}
	golden, err := os.ReadFile(cfg.goldenPath)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !strings.Contains(string(golden), "wiretag.Info.ID id\n") {
		t.Fatalf("golden missing the Info.ID pin:\n%s", golden)
	}

	drifts := []struct {
		name    string
		rewrite func(string) string
		wantMsg string
	}{
		{
			name: "changed tag",
			rewrite: func(s string) string {
				return strings.Replace(s, "wiretag.Info.ID id\n", "wiretag.Info.ID identifier\n", 1)
			},
			wantMsg: `wiretag.Info.ID is tagged "id", golden pins "identifier"`,
		},
		{
			name:    "unpinned field",
			rewrite: func(s string) string { return strings.Replace(s, "wiretag.Info.ID id\n", "", 1) },
			wantMsg: `wiretag.Info.ID (tagged "id") is not pinned`,
		},
		{
			name:    "stale pin",
			rewrite: func(s string) string { return s + "wiretag.Ghost.X gone\n" },
			wantMsg: `wiretag.Ghost.X pinned as "gone" but no longer exists`,
		},
	}
	for _, d := range drifts {
		t.Run(d.name, func(t *testing.T) {
			if err := os.WriteFile(cfg.goldenPath, []byte(d.rewrite(string(golden))), 0o644); err != nil {
				t.Fatal(err)
			}
			findings, err := checkManifest(units, cfg)
			if err != nil {
				t.Fatalf("checkManifest: %v", err)
			}
			found := false
			for _, f := range findings {
				if strings.Contains(f.Msg, d.wantMsg) {
					found = true
				}
			}
			if !found {
				t.Errorf("want a finding containing %q, got %v", d.wantMsg, findings)
			}
		})
	}

	// A run that loads no wire-scope package leaves the golden alone
	// and reports nothing (partial runs must not cry missing).
	other := fixtureUnit(t, "clean")
	findings, err = checkManifest([]*unit{other}, cfg)
	if err != nil {
		t.Fatalf("checkManifest out of scope: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("out-of-scope run reported drift: %v", findings)
	}
}
