package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// config carries the driver options plus the per-analyzer package
// scopes. The scopes are suffix-matched against unit import paths, so
// fixture packages under testdata/src (whose import path is the part
// after "testdata/src/") can opt in by mirroring the real layout.
type config struct {
	enable     map[string]bool
	jsonOut    bool
	goldenPath string
	update     bool
	// wireScope lists the packages whose computed json tag set is
	// pinned by the golden manifest: the /v1 wire layer plus every
	// package whose structs those types alias or embed, and the
	// store record documents.
	wireScope []string
	// floatScope lists the bit-identity kernel packages floatdet
	// polices.
	floatScope []string
	// ctxExempt lists path segments whose packages are entry points:
	// minting a fresh context there is the norm, not a bug.
	ctxExempt []string
}

// defaultConfig is the project wiring; tests override the scopes to
// point at fixtures.
func defaultConfig() *config {
	return &config{
		goldenPath: filepath.Join("tools", "ldvet", "wiretags.golden"),
		wireScope: []string{
			"repro",
			"repro/serve",
			"repro/internal/race",
			"repro/internal/core",
			"repro/internal/fitness",
			"repro/internal/shard",
		},
		floatScope: []string{
			"internal/ehdiall",
			"internal/genotype",
			"internal/fitness",
			"internal/clump",
		},
		ctxExempt: []string{"cmd", "tools", "examples"},
	}
}

// finding is one analyzer hit. Pos is "file:line:col" so the text
// output is clickable and the JSON output is grep-able.
type finding struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Msg      string `json:"message"`
}

// unit is one loaded, type-checked package directory.
type unit struct {
	dir   string
	path  string // import path ("repro/serve"; for fixtures, the part after testdata/src/)
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	pkg   *types.Package
	// allow maps filename → line → analyzer names from
	// //ldvet:allow comments.
	allow map[string]map[int][]string
}

// posOf renders a token position as file:line:col.
func (u *unit) posOf(p token.Pos) string {
	pos := u.fset.Position(p)
	return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}

// allowedAt reports whether the analyzer is suppressed on any of the
// given source lines of the file holding p (the finding's line, the
// line above it, and for mutexio the line taking the lock).
func (u *unit) allowedAt(analyzer string, p token.Pos, extra ...token.Pos) bool {
	check := func(q token.Pos) bool {
		pos := u.fset.Position(q)
		lines := u.allow[pos.Filename]
		for _, ln := range []int{pos.Line, pos.Line - 1} {
			for _, name := range lines[ln] {
				if name == analyzer {
					return true
				}
			}
		}
		return false
	}
	if check(p) {
		return true
	}
	for _, q := range extra {
		if check(q) {
			return true
		}
	}
	return false
}

// pathInScope suffix-matches an import path against a scope list:
// "kernel/internal/fitness" matches the entry "internal/fitness".
func pathInScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// pathHasSegment reports whether any "/"-separated segment of the
// import path equals one of the names.
func pathHasSegment(path string, names []string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, n := range names {
			if seg == n {
				return true
			}
		}
	}
	return false
}

// expandPatterns resolves the argument list to package directories. A
// plain directory stands for itself; "DIR/..." walks DIR recursively,
// skipping testdata, hidden and tool-output directories and keeping
// only directories that contain non-test Go files.
func expandPatterns(args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if !recursive {
			add(arg)
			continue
		}
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "bin" || name == "bench") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages matched %v", args)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one non-test Go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// loadUnits parses and type-checks each directory as one package.
// _test.go files are excluded — ldvet vets the shipped sources; tests
// are free to Background() and sleep as they like. One source
// importer is shared across the run so the stdlib is type-checked
// once.
func loadUnits(dirs []string) ([]*unit, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var units []*unit
	var modName string
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		path, err := importPathFor(dir, &modName)
		if err != nil {
			return nil, err
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("%s: type checking: %v", dir, err)
		}
		units = append(units, &unit{
			dir:   dir,
			path:  path,
			fset:  fset,
			files: files,
			info:  info,
			pkg:   pkg,
			allow: collectAllows(fset, files),
		})
	}
	return units, nil
}

// parseDir parses every non-test Go file of one package directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		names := make([]string, 0, len(pkgs))
		for n := range pkgs {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("%s: want exactly one package, have %v", dir, names)
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}
	}
	return files, nil
}

// importPathFor derives the unit's import path. Fixture directories
// under a testdata/src tree use the path below it (the analysistest
// convention), so scope rules apply to fixtures exactly as they do to
// real packages; everything else is module-relative, with the module
// name read lazily from go.mod in the working directory.
func importPathFor(dir string, modName *string) (string, error) {
	slashed := filepath.ToSlash(filepath.Clean(dir))
	if _, after, ok := strings.Cut(slashed, "testdata/src/"); ok {
		return after, nil
	}
	if *modName == "" {
		name, err := moduleName()
		if err != nil {
			return "", err
		}
		*modName = name
	}
	rel, err := filepath.Rel(".", dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return *modName, nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("%s: outside the module; run ldvet from the module root", dir)
	}
	return *modName + "/" + rel, nil
}

// moduleName reads the module path from ./go.mod.
func moduleName() (string, error) {
	b, err := os.ReadFile("go.mod")
	if err != nil {
		return "", fmt.Errorf("reading go.mod (run ldvet from the module root): %v", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(name), nil
		}
	}
	return "", fmt.Errorf("go.mod: no module directive")
}

// collectAllows gathers //ldvet:allow comments: the analyzer names
// (comma-separated, optionally followed by ": justification") allowed
// per file and line.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//ldvet:allow")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				if i := strings.IndexAny(text, ":"); i >= 0 {
					text = text[:i] // strip the justification
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int][]string{}
				}
				for _, name := range strings.Split(text, ",") {
					if name = strings.TrimSpace(name); name != "" {
						out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line], name)
					}
				}
			}
		}
	}
	return out
}

// analyzers is the suite registry; each entry runs over one unit.
var analyzers = map[string]func(*unit, *config) []finding{
	"mutexio":  runMutexIO,
	"wiretag":  runWiretag,
	"ctxflow":  runCtxflow,
	"floatdet": runFloatdet,
}
