package main

import (
	"fmt"
	"go/ast"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// runWiretag enforces the per-struct rule: any struct carrying at
// least one json tag is a wire struct, and every exported,
// non-embedded field of a wire struct must carry an explicit json tag
// — an untagged field silently changes the wire the moment it is
// added, which is exactly how the hand-written field-name pinning
// tests used to find out after the fact. Embedded fields are exempt:
// inlining an embedded document (jobRecord embedding JobInfo) is the
// intended idiom.
func runWiretag(u *unit, cfg *config) []finding {
	var out []finding
	for structName, st := range wireStructs(u) {
		for _, f := range st.Fields.List {
			if len(f.Names) == 0 {
				continue // embedded: marshals inline by design
			}
			if tag, ok := jsonTag(f); ok && tag != "" {
				continue
			}
			for _, name := range f.Names {
				if !name.IsExported() {
					continue
				}
				if u.allowedAt("wiretag", name.Pos()) {
					continue
				}
				out = append(out, finding{
					Analyzer: "wiretag",
					Pos:      u.posOf(name.Pos()),
					Msg: fmt.Sprintf("exported field %s.%s of wire struct lacks an explicit json tag",
						structName, name.Name),
				})
			}
		}
	}
	return out
}

// wireStructs returns the unit's struct declarations that carry at
// least one json tag, keyed by type name.
func wireStructs(u *unit) map[string]*ast.StructType {
	out := map[string]*ast.StructType{}
	for _, file := range u.files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if _, ok := jsonTag(f); ok {
					out[ts.Name.Name] = st
					break
				}
			}
			return true
		})
	}
	return out
}

// jsonTag extracts a field's json struct tag; ok reports whether one
// is present at all.
func jsonTag(f *ast.Field) (string, bool) {
	if f.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(f.Tag.Value)
	if err != nil {
		return "", false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	return tag, ok
}

// checkManifest is the cross-unit half of wiretag: the computed
// pkg.Struct.Field → tag set of the wire-surface packages must match
// the checked-in golden manifest, so any drift — a renamed tag, a
// removed field, a new field — is a reviewable diff before it is a
// broken client. Only the loaded packages are compared, so a partial
// run (`ldvet ./serve`) does not report the others as missing.
// -update rewrites the loaded packages' entries in place.
func checkManifest(units []*unit, cfg *config) ([]finding, error) {
	computed := map[string]string{} // "pkg.Struct.Field" -> tag
	loaded := map[string]bool{}     // pkg paths contributing to the manifest
	for _, u := range units {
		if !pathInScope(u.path, cfg.wireScope) {
			continue
		}
		loaded[u.path] = true
		for structName, st := range wireStructs(u) {
			for _, f := range st.Fields.List {
				tag, ok := jsonTag(f)
				if !ok {
					continue
				}
				for _, name := range f.Names {
					computed[u.path+"."+structName+"."+name.Name] = tag
				}
			}
		}
	}
	if len(loaded) == 0 {
		return nil, nil // nothing in scope was scanned: nothing to pin
	}

	golden, err := readManifest(cfg.goldenPath)
	if os.IsNotExist(err) {
		golden = map[string]string{}
	} else if err != nil {
		return nil, err
	}

	if cfg.update {
		merged := map[string]string{}
		for k, v := range golden {
			if !loaded[manifestPkg(k)] {
				merged[k] = v // keep entries of packages not scanned this run
			}
		}
		for k, v := range computed {
			merged[k] = v
		}
		return nil, writeManifest(cfg.goldenPath, merged)
	}

	var out []finding
	report := func(msg string) {
		out = append(out, finding{Analyzer: "wiretag", Pos: cfg.goldenPath, Msg: msg})
	}
	for k, want := range golden {
		if !loaded[manifestPkg(k)] {
			continue
		}
		got, ok := computed[k]
		if !ok {
			report(fmt.Sprintf("manifest drift: %s pinned as %q but no longer exists (run with -update if intended)", k, want))
			continue
		}
		if got != want {
			report(fmt.Sprintf("manifest drift: %s is tagged %q, golden pins %q (run with -update if intended)", k, got, want))
		}
	}
	for k, got := range computed {
		if _, ok := golden[k]; !ok {
			report(fmt.Sprintf("manifest drift: %s (tagged %q) is not pinned in the golden manifest (run with -update)", k, got))
		}
	}
	return out, nil
}

// manifestPkg extracts the package path from a manifest key
// ("repro/serve.JobInfo.ID" → "repro/serve").
func manifestPkg(key string) string {
	// The key ends in ".Struct.Field"; both are identifiers without
	// dots, so cut the last two dot-separated parts.
	i := strings.LastIndexByte(key, '.')
	if i < 0 {
		return key
	}
	j := strings.LastIndexByte(key[:i], '.')
	if j < 0 {
		return key[:i]
	}
	return key[:j]
}

// readManifest parses a golden file: one "key tag" pair per line,
// "#" comments and blank lines ignored. A tag may contain anything
// but a newline; the key never contains spaces.
func readManifest(path string) (map[string]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for i, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, tag, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%s:%d: malformed manifest line %q (want \"pkg.Struct.Field tag\")", path, i+1, line)
		}
		out[key] = tag
	}
	return out, nil
}

// writeManifest renders the manifest sorted by key, with a header
// explaining how it regenerates.
func writeManifest(path string, m map[string]string) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# ldvet wiretag manifest: the computed json tag of every tagged\n")
	b.WriteString("# struct field in the wire-surface packages. Regenerate with\n")
	b.WriteString("#   go run ./tools/ldvet -enable wiretag -update ./...\n")
	b.WriteString("# A diff here IS a wire change; review it as one.\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s\n", k, m[k])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
