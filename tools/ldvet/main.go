// Command ldvet runs the project's invariant analyzers — the static
// encoding of bug classes this repository has already paid for once.
// Like tools/lintdoc it is a zero-dependency driver: stdlib go/parser
// and go/types only, with imports resolved from source via
// importer.ForCompiler(fset, "source", nil).
//
// Usage:
//
//	go run ./tools/ldvet [flags] ./...
//
// Analyzers (all enabled by default, select with -enable):
//
//	mutexio  — no blocking I/O while a sync.Mutex/RWMutex is held
//	           (the PR 7 janitor-stall bug, generalized). I/O-ish
//	           means os.* calls, net/http calls, time.Sleep and
//	           Put/Get/Delete/List methods on *Store types, plus any
//	           package-local function that transitively reaches one.
//	wiretag  — every exported field of a wire struct (a struct with
//	           at least one json tag) carries an explicit json tag,
//	           and the computed tag set of the wire-surface packages
//	           matches tools/ldvet/wiretags.golden, so /v1 and stored
//	           record drift is a reviewable diff (-update rewrites).
//	ctxflow  — no context.Background()/context.TODO() outside cmd/,
//	           tools/, examples/ and _test.go files (nil-ctx guards
//	           `if ctx == nil { ctx = context.Background() }` are
//	           recognized and exempt), and a function that receives a
//	           ctx must not pass a fresh one to a context-taking
//	           callee (the PR 8 canceled-lane-hang class).
//	floatdet — inside the bit-identity kernel packages, forbid float
//	           accumulation under map iteration order, package-level
//	           math/rand (unseedable global source) and time.Now —
//	           the constructs that silently break the packed-vs-byte
//	           contract.
//
// A finding is suppressed by an annotation comment on its line, the
// line above it, or (for mutexio) the line taking the lock:
//
//	//ldvet:allow mutexio: the fsync'd Put is what makes dedup atomic
//
// The justification after the analyzer name is required by
// convention; the suite exists so every exception is a written-down
// decision. Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	cfg := defaultConfig()
	var enable string
	flag.StringVar(&enable, "enable", "mutexio,wiretag,ctxflow,floatdet", "comma-separated analyzers to run")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit findings as a JSON array on stdout")
	flag.StringVar(&cfg.goldenPath, "wiretags", cfg.goldenPath, "path of the wire-tag golden manifest")
	flag.BoolVar(&cfg.update, "update", false, "rewrite the wire-tag golden manifest instead of diffing it")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ldvet [flags] PATTERN...  (a pattern is a directory or ./...)")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg.enable = map[string]bool{}
	for _, name := range strings.Split(enable, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := analyzers[name]; !ok {
			fmt.Fprintf(os.Stderr, "ldvet: unknown analyzer %q (have mutexio, wiretag, ctxflow, floatdet)\n", name)
			os.Exit(2)
		}
		cfg.enable[name] = true
	}

	dirs, err := expandPatterns(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldvet: %v\n", err)
		os.Exit(2)
	}
	units, err := loadUnits(dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldvet: %v\n", err)
		os.Exit(2)
	}
	findings, err := runAnalyzers(units, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldvet: %v\n", err)
		os.Exit(2)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "ldvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s: %s\n", f.Pos, f.Analyzer, f.Msg)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ldvet: %d findings\n", len(findings))
		os.Exit(1)
	}
}

// runAnalyzers runs every enabled analyzer over every unit, then the
// cross-unit wiretag manifest check, and returns the surviving
// (non-suppressed) findings sorted by position.
func runAnalyzers(units []*unit, cfg *config) ([]finding, error) {
	var out []finding
	for _, u := range units {
		for name, run := range analyzers {
			if !cfg.enable[name] {
				continue
			}
			out = append(out, run(u, cfg)...)
		}
	}
	if cfg.enable["wiretag"] {
		manifest, err := checkManifest(units, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, manifest...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Msg < out[j].Msg
	})
	return out, nil
}
