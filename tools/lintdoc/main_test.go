package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lint writes src as a one-file package into a temp dir and returns
// lintDir's findings with the temp path stripped.
func lint(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintDir(dir)
	if err != nil {
		t.Fatalf("lintDir: %v", err)
	}
	for i, f := range findings {
		findings[i] = f[strings.Index(f, "x.go"):]
	}
	return findings
}

func expect(t *testing.T, findings []string, substrs ...string) {
	t.Helper()
	matched := make([]bool, len(findings))
	for _, substr := range substrs {
		found := false
		for i, f := range findings {
			if !matched[i] && strings.Contains(f, substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding matches %q in %v", substr, findings)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding %q", f)
		}
	}
}

func TestFuncsAndMethods(t *testing.T) {
	findings := lint(t, `package p

func Exported() {}

// Documented does things.
func Documented() {}

func unexported() {}

// T is a type.
type T struct{}

func (t *T) Method() {}

// Fine is documented.
func (t T) Fine() {}

type hidden struct{}

func (h *hidden) Method() {} // unexported receiver: not public surface
`)
	expect(t, findings,
		"func Exported lacks a doc comment",
		"func T.Method lacks a doc comment",
	)
}

func TestGroupedDecls(t *testing.T) {
	findings := lint(t, `package p

// Limits for the queue.
const (
	MaxJobs  = 8
	MaxRaces = 2
)

const Bare = 1

var (
	// Registry holds state.
	Registry int
	Loose    int
	Inline   int // trailing comments count
)

type (
	// Pair is documented.
	Pair struct{}
	Odd  struct{}
)
`)
	expect(t, findings,
		"const Bare lacks a doc comment",
		"var Loose lacks a doc comment",
		"type Odd lacks a doc comment",
	)
}

func TestTypeBodies(t *testing.T) {
	findings := lint(t, `package p

// Info is a wire document.
type Info struct {
	// ID is the identifier.
	ID    string
	Count int
	Note  string // trailing comment suffices
	inner int
}

// Store is the persistence seam.
type Store interface {
	// Put writes a record.
	Put(id string) error
	Delete(id string) error
}

type internal struct {
	Field int // fields of unexported types are not checked
}
`)
	expect(t, findings,
		"field Info.Count lacks a doc comment",
		"method Store.Delete lacks a doc comment",
	)
}

func TestGenericReceiver(t *testing.T) {
	findings := lint(t, `package p

// Cache is generic.
type Cache[K comparable, V any] struct{}

func (c *Cache[K, V]) Get(k K) (V, bool) { var v V; return v, false }
`)
	expect(t, findings, "func Cache.Get lacks a doc comment")
}

func TestCleanPackage(t *testing.T) {
	findings := lint(t, `package p

// Documented is fine.
func Documented() {}

// V is fine.
var V int
`)
	if len(findings) != 0 {
		t.Errorf("want no findings, got %v", findings)
	}
}
