// Command lintdoc fails when an exported identifier lacks a godoc
// comment. It is the CI docs gate for the packages whose godoc is a
// public contract (the repro facade, the serve wire layer, and the
// island engine).
//
// Usage:
//
//	go run ./tools/lintdoc DIR...
//
// Each DIR is parsed as one package directory; _test.go files are
// skipped. The check covers every top-level exported declaration —
// types, functions, methods with exported receivers, consts and vars
// (a doc comment on a grouped declaration covers the group) — and
// exported struct fields and interface methods of exported types.
// Findings are printed as file:line: identifier and the exit status
// is 1 when any exist.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc DIR...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		findings, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns its findings.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					lintFunc(d, report)
				case *ast.GenDecl:
					lintGen(d, report)
				}
			}
		}
	}
	return out, nil
}

// lintFunc checks one function or method declaration.
func lintFunc(d *ast.FuncDecl, report func(token.Pos, string)) {
	if !d.Name.IsExported() || d.Doc.Text() != "" {
		return
	}
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv != "" && !ast.IsExported(recv) {
			return // method on an unexported type: not public surface
		}
		name = recv + "." + name
	}
	report(d.Pos(), "func "+name+" lacks a doc comment")
}

// lintGen checks one const/var/type declaration (possibly grouped).
func lintGen(d *ast.GenDecl, report func(token.Pos, string)) {
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Pos(), "type "+s.Name.Name+" lacks a doc comment")
			}
			lintTypeBody(s.Name.Name, s.Type, report)
		case *ast.ValueSpec:
			hasDoc := groupDoc || s.Doc.Text() != "" || s.Comment.Text() != ""
			if hasDoc {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), d.Tok.String()+" "+n.Name+" lacks a doc comment")
				}
			}
		}
	}
}

// lintTypeBody checks exported struct fields and interface methods of
// an exported type.
func lintTypeBody(typeName string, expr ast.Expr, report func(token.Pos, string)) {
	switch t := expr.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc.Text() != "" || f.Comment.Text() != "" {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					report(n.Pos(), "field "+typeName+"."+n.Name+" lacks a doc comment")
				}
			}
		}
	case *ast.InterfaceType:
		for _, f := range t.Methods.List {
			if f.Doc.Text() != "" || f.Comment.Text() != "" {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					report(n.Pos(), "method "+typeName+"."+n.Name+" lacks a doc comment")
				}
			}
		}
	}
}

// receiverName extracts the receiver's type name from its AST
// expression ("T", "*T", "T[...]").
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr:
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}
