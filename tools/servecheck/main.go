// Command servecheck is the end-to-end integration check of the
// durable serving layer, driven against a real ldserve binary. It
// proves the restart round-trip the serve package promises:
//
//  1. boot ldserve with a temp -data-dir and an API key,
//  2. upload a dataset, open a session, run a GA job to completion
//     through the typed Go client (SSE stream included),
//  3. stop the server with SIGTERM (graceful drain),
//  4. boot a brand-new ldserve process on the same -data-dir,
//  5. fetch GET /v1/jobs/{id} and verify the persisted GAResult is
//     JSON-identical to the one observed before the restart — and
//     that auth survived too (a keyless request still gets 401).
//
// CI builds ldserve and runs
//
//	go run ./tools/servecheck -ldserve bin/ldserve
//
// Any failure exits nonzero with a diagnostic.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro"
	"repro/serve"
)

func main() {
	var (
		bin     = flag.String("ldserve", "bin/ldserve", "path to the ldserve binary")
		dataDir = flag.String("data-dir", "", "data directory (default: a fresh temp dir)")
		apiKey  = flag.String("api-key", "servecheck-secret", "API key to run the server with")
	)
	flag.Parse()

	if *dataDir == "" {
		dir, err := os.MkdirTemp("", "servecheck-*")
		if err != nil {
			fatalf("temp dir: %v", err)
		}
		defer os.RemoveAll(dir)
		*dataDir = dir
	}
	addr := freeAddr()
	base := "http://" + addr
	ctx := context.Background()
	client := serve.NewClient(base, nil, serve.WithAPIKey(*apiKey))

	// Life 1: upload → session → job → done.
	proc := startServer(*bin, addr, *dataDir, *apiKey)
	ds, err := client.CreateDataset(ctx, serve.DatasetRequest{Format: serve.FormatPreset, Preset: 51, Seed: 1})
	if err != nil {
		fatalf("upload: %v", err)
	}
	sess, err := client.CreateSession(ctx, serve.SessionRequest{DatasetID: ds.ID})
	if err != nil {
		fatalf("session: %v", err)
	}
	job, err := client.StartJob(ctx, sess.ID, serve.JobRequest{Config: smallConfig()})
	if err != nil {
		fatalf("job: %v", err)
	}
	generations := 0
	final, err := client.StreamEvents(ctx, job.ID, func(ev serve.Event) error {
		if ev.Type == serve.EventGeneration {
			generations++
		}
		return nil
	})
	if err != nil {
		fatalf("stream: %v", err)
	}
	if final == nil || final.State != serve.JobDone || final.Result == nil {
		fatalf("job did not finish: %+v", final)
	}
	before, err := json.Marshal(final.Result)
	if err != nil {
		fatalf("marshal: %v", err)
	}
	fmt.Printf("servecheck: job %s done after %d generations (%d streamed), result %d bytes\n",
		job.ID, final.Result.Generations, generations, len(before))
	stopServer(proc)

	// Life 2: the same data dir, a brand-new process.
	proc = startServer(*bin, addr, *dataDir, *apiKey)
	defer stopServer(proc)

	// Auth survived the restart: a keyless request is rejected.
	if _, err := serve.NewClient(base, nil).Job(ctx, job.ID); !errors.Is(err, serve.ErrUnauthorized) {
		fatalf("keyless request after restart: err = %v, want unauthorized", err)
	}
	ji, err := client.Job(ctx, job.ID)
	if err != nil {
		fatalf("restored job fetch: %v", err)
	}
	if ji.State != serve.JobDone || ji.Result == nil {
		fatalf("restored job = %+v, want done with result", ji)
	}
	after, err := json.Marshal(ji.Result)
	if err != nil {
		fatalf("marshal: %v", err)
	}
	if !bytes.Equal(before, after) {
		fatalf("result changed across restart:\nbefore %s\nafter  %s", before, after)
	}
	// The restored session is live: listings agree and new work runs.
	jl, err := client.Jobs(ctx, serve.JobsQuery{SessionID: sess.ID})
	if err != nil || len(jl.Jobs) != 1 || jl.Jobs[0].ID != job.ID {
		fatalf("restored listing = %+v, %v", jl, err)
	}
	job2, err := client.StartJob(ctx, sess.ID, serve.JobRequest{Config: smallConfig()})
	if err != nil {
		fatalf("job on restored session: %v", err)
	}
	if _, err := client.StreamEvents(ctx, job2.ID, nil); err != nil {
		fatalf("second job stream: %v", err)
	}
	fmt.Println("servecheck: restart round-trip OK — persisted result is JSON-identical, auth enforced, session live")
}

// smallConfig is a GA configuration that finishes in well under a
// second on the 51-SNP preset.
func smallConfig() repro.GAConfig {
	return repro.GAConfig{
		MinSize: 2, MaxSize: 3, PopulationSize: 24,
		PairsPerGeneration: 8, StagnationLimit: 12,
		ImmigrantStagnation: 5, MaxGenerations: 200, Seed: 11,
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servecheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// freeAddr reserves a loopback port for the server.
func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startServer boots ldserve and waits for /healthz.
func startServer(bin, addr, dataDir, apiKey string) *exec.Cmd {
	abs, err := filepath.Abs(bin)
	if err != nil {
		fatalf("%v", err)
	}
	cmd := exec.Command(abs,
		"-addr", addr,
		"-data-dir", dataDir,
		"-api-key", apiKey,
		"-drain", "2s",
		"-shutdown-timeout", "5s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("start %s: %v", bin, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	fatalf("server on %s never came up", addr)
	return nil
}

// stopServer sends SIGTERM (the graceful drain path) and waits.
func stopServer(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-done
		fatalf("server ignored SIGTERM for 30s")
	}
}
